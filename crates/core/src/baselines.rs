//! Comparison schemes used by the paper's evaluation and the extension
//! experiments.
//!
//! The paper's Fig. 2 compares Random-Schedule against `SP+MCF`:
//! shortest-path routing (what data centers commonly deploy) followed by the
//! optimal DCFS scheduler. This module provides that baseline plus two
//! extension baselines used in the ablation experiments: ECMP routing and a
//! greedy "as fast as possible" scheme with no energy management at all.
//!
//! Every baseline is also available behind the [`crate::Algorithm`]
//! interface (`sp-mcf`, `ecmp`, `least-loaded`, `consolidate`, `greedy` in
//! the [`crate::AlgorithmRegistry`]); the free functions here are the
//! deprecated one-shot delegates kept for the transition, gated behind the
//! on-by-default `legacy-api` cargo feature ([`BaselineError`] stays
//! available either way — it is part of [`crate::SolveError`]'s surface).

#[cfg(feature = "legacy-api")]
use crate::dcfs::most_critical_first;
use crate::dcfs::DcfsError;
#[cfg(feature = "legacy-api")]
use crate::routing::Routing;
use crate::routing::RoutingError;
#[cfg(feature = "legacy-api")]
use crate::schedule::{FlowSchedule, Schedule};
#[cfg(feature = "legacy-api")]
use dcn_flow::FlowSet;
#[cfg(feature = "legacy-api")]
use dcn_power::{PowerFunction, RateProfile};
#[cfg(feature = "legacy-api")]
use dcn_topology::Network;
use std::fmt;

/// Errors raised by the baseline pipelines.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Routing failed.
    Routing(RoutingError),
    /// Scheduling failed.
    Scheduling(DcfsError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Routing(e) => write!(f, "baseline routing failed: {e}"),
            BaselineError::Scheduling(e) => write!(f, "baseline scheduling failed: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<RoutingError> for BaselineError {
    fn from(value: RoutingError) -> Self {
        BaselineError::Routing(value)
    }
}

impl From<DcfsError> for BaselineError {
    fn from(value: DcfsError) -> Self {
        BaselineError::Scheduling(value)
    }
}

/// The paper's `SP+MCF` baseline: hop-count shortest-path routing followed
/// by the optimal DCFS scheduler (Most-Critical-First).
///
/// # Errors
///
/// Propagates routing and scheduling failures.
#[cfg(feature = "legacy-api")]
#[deprecated(
    since = "0.2.0",
    note = "run the `sp-mcf` algorithm (`RoutedMcf::shortest_path`) on a SolverContext"
)]
#[allow(deprecated)] // the delegate body intentionally keeps the legacy call path
pub fn sp_mcf(
    network: &Network,
    flows: &FlowSet,
    power: &PowerFunction,
) -> Result<Schedule, BaselineError> {
    let paths = Routing::ShortestPath.compute(network, flows)?;
    Ok(most_critical_first(network, flows, &paths, power)?)
}

/// ECMP routing (uniform choice among minimum-hop paths) followed by
/// Most-Critical-First. Used by the ablation experiments to separate the
/// effect of path diversity from the effect of energy-aware routing.
///
/// # Errors
///
/// Propagates routing and scheduling failures.
#[cfg(feature = "legacy-api")]
#[deprecated(
    since = "0.2.0",
    note = "run the `ecmp` algorithm (`RoutedMcf::ecmp`) on a SolverContext"
)]
#[allow(deprecated)] // the delegate body intentionally keeps the legacy call path
pub fn ecmp_mcf(
    network: &Network,
    flows: &FlowSet,
    power: &PowerFunction,
    seed: u64,
) -> Result<Schedule, BaselineError> {
    let paths = Routing::Ecmp { seed }.compute(network, flows)?;
    Ok(most_critical_first(network, flows, &paths, power)?)
}

/// Volume-aware k-shortest-path routing followed by Most-Critical-First:
/// a consolidation-style traffic-engineering stand-in.
///
/// # Errors
///
/// Propagates routing and scheduling failures.
#[cfg(feature = "legacy-api")]
#[deprecated(
    since = "0.2.0",
    note = "run the `least-loaded` algorithm (`RoutedMcf::least_loaded`) on a SolverContext"
)]
#[allow(deprecated)] // the delegate body intentionally keeps the legacy call path
pub fn least_loaded_mcf(
    network: &Network,
    flows: &FlowSet,
    power: &PowerFunction,
    k: usize,
) -> Result<Schedule, BaselineError> {
    let paths = Routing::LeastLoadedKsp { k }.compute(network, flows)?;
    Ok(most_critical_first(network, flows, &paths, power)?)
}

/// A consolidation-style (ElasticTree-like) baseline: flows are routed
/// greedily, in decreasing volume order, onto the candidate shortest path
/// that activates the fewest *new* links (ties broken by committed volume),
/// and then scheduled optimally with Most-Critical-First.
///
/// This is the "traffic engineering first, deadlines second" strategy the
/// paper's related-work section contrasts itself against: it minimises the
/// number of active links (good for idle power) but concentrates load
/// (bad for the superadditive speed-scaling term).
///
/// # Errors
///
/// Propagates routing and scheduling failures.
#[cfg(feature = "legacy-api")]
#[deprecated(
    since = "0.2.0",
    note = "run the `consolidate` algorithm (`ConsolidatingMcf`) on a SolverContext"
)]
#[allow(deprecated)] // the delegate body intentionally keeps the legacy call path
pub fn consolidating_mcf(
    network: &Network,
    flows: &FlowSet,
    power: &PowerFunction,
    k: usize,
) -> Result<Schedule, BaselineError> {
    use dcn_topology::{k_shortest_paths_on, GraphCsr, ShortestPathEngine};

    let k = k.max(1);
    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_by(|&a, &b| {
        flows
            .flow(b)
            .volume
            .partial_cmp(&flows.flow(a).volume)
            .expect("finite volumes")
    });

    let graph = GraphCsr::from_network(network);
    let mut engine = ShortestPathEngine::new();
    let mut active = vec![false; network.link_count()];
    let mut committed = vec![0.0_f64; network.link_count()];
    let mut paths: Vec<Option<dcn_topology::Path>> = vec![None; flows.len()];
    for id in order {
        let f = flows.flow(id);
        let candidates = k_shortest_paths_on(&graph, &mut engine, f.src, f.dst, k, |_| 1.0);
        if candidates.is_empty() {
            return Err(BaselineError::Routing(RoutingError::Unreachable {
                flow: f.id,
            }));
        }
        let best = candidates
            .into_iter()
            .min_by(|a, b| {
                let new_a = a.links().iter().filter(|l| !active[l.index()]).count();
                let new_b = b.links().iter().filter(|l| !active[l.index()]).count();
                let load_a = a
                    .links()
                    .iter()
                    .map(|l| committed[l.index()])
                    .fold(0.0_f64, f64::max);
                let load_b = b
                    .links()
                    .iter()
                    .map(|l| committed[l.index()])
                    .fold(0.0_f64, f64::max);
                new_a
                    .cmp(&new_b)
                    .then(load_a.partial_cmp(&load_b).expect("finite volumes"))
                    .then(a.len().cmp(&b.len()))
            })
            .expect("candidates non-empty");
        for &l in best.links() {
            active[l.index()] = true;
            committed[l.index()] += f.volume;
        }
        paths[id] = Some(best);
    }
    let paths: Vec<dcn_topology::Path> = paths
        .into_iter()
        .map(|p| p.expect("every flow routed"))
        .collect();
    Ok(most_critical_first(network, flows, &paths, power)?)
}

/// The "no energy management" baseline: every flow is routed on its shortest
/// path and transmitted as fast as the link capacity allows, starting at its
/// release time.
///
/// This mirrors how a deadline-oblivious transport with full line rate would
/// behave; it ignores contention, so the resulting schedule may exceed link
/// capacities when many flows collide (callers can check with
/// [`Schedule::verify`]). It exists to quantify how much energy headroom
/// deadline-aware scheduling exploits.
///
/// # Errors
///
/// Propagates routing failures.
#[cfg(feature = "legacy-api")]
#[deprecated(
    since = "0.2.0",
    note = "run the `greedy` algorithm (`FullRateGreedy`) on a SolverContext"
)]
#[allow(deprecated)] // the delegate body intentionally keeps the legacy call path
pub fn full_rate_greedy(
    network: &Network,
    flows: &FlowSet,
    power: &PowerFunction,
) -> Result<Schedule, BaselineError> {
    let paths = Routing::ShortestPath.compute(network, flows)?;
    let horizon = if flows.is_empty() {
        (0.0, 0.0)
    } else {
        flows.horizon()
    };
    let rate = power.capacity();
    let flow_schedules = flows
        .iter()
        .map(|f| {
            // Transmit at full rate from the release; if even full rate
            // cannot meet the deadline, stretch to the density (the flow is
            // then infeasible at line rate and verify() will say so).
            let duration = (f.volume / rate).min(f.span_length());
            let actual_rate = f.volume / duration;
            FlowSchedule::uniform(
                f.id,
                paths[f.id].clone(),
                RateProfile::constant(f.release, f.release + duration, actual_rate),
            )
        })
        .collect();
    Ok(Schedule::new(flow_schedules, horizon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{ConsolidatingMcf, Dcfsr, FullRateGreedy, RoutedMcf};
    use crate::{Algorithm, SolverContext};
    use dcn_flow::workload::UniformWorkload;
    use dcn_power::PowerFunction;
    use dcn_topology::builders;

    fn x2(capacity: f64) -> PowerFunction {
        PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
    }

    #[test]
    fn sp_mcf_meets_all_deadlines() {
        let topo = builders::fat_tree(4);
        let power = x2(1e9);
        let flows = UniformWorkload::paper_defaults(40, 13)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let solution = RoutedMcf::shortest_path()
            .solve(&mut ctx, &flows, &power)
            .unwrap();
        ctx.verify(solution.schedule.as_ref().unwrap(), &flows, &power)
            .unwrap();
    }

    #[test]
    fn sp_mcf_energy_is_at_least_the_fractional_lower_bound() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = UniformWorkload::paper_defaults(30, 21)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let rs = Dcfsr::default().solve(&mut ctx, &flows, &power).unwrap();
        let sp = RoutedMcf::shortest_path()
            .solve(&mut ctx, &flows, &power)
            .unwrap();
        assert!(sp.total_energy().unwrap() >= rs.lower_bound.unwrap() - 1e-6);
    }

    #[test]
    fn ecmp_and_least_loaded_also_meet_deadlines() {
        let topo = builders::fat_tree(4);
        let power = x2(1e9);
        let flows = UniformWorkload::paper_defaults(25, 3)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut schemes: Vec<Box<dyn Algorithm>> = vec![
            Box::new(RoutedMcf::ecmp(4)),
            Box::new(RoutedMcf::least_loaded(4)),
            Box::new(ConsolidatingMcf::new(4)),
        ];
        for algo in &mut schemes {
            let solution = algo.solve(&mut ctx, &flows, &power).unwrap();
            ctx.verify(solution.schedule.as_ref().unwrap(), &flows, &power)
                .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        }
    }

    #[test]
    fn consolidation_uses_no_more_links_than_ecmp() {
        // The whole point of the consolidation baseline is a smaller active
        // link set; ECMP spreads load over many equal-cost paths.
        let topo = builders::fat_tree(4);
        let power = x2(1e9);
        let flows = UniformWorkload::paper_defaults(40, 12)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let consolidated = ConsolidatingMcf::new(4)
            .solve(&mut ctx, &flows, &power)
            .unwrap();
        let ecmp = RoutedMcf::ecmp(12).solve(&mut ctx, &flows, &power).unwrap();
        let consolidated_links = consolidated.schedule.unwrap().active_links().len();
        let ecmp_links = ecmp.schedule.unwrap().active_links().len();
        assert!(
            consolidated_links <= ecmp_links,
            "consolidation ({consolidated_links}) should not activate more links than \
             ECMP ({ecmp_links})"
        );
    }

    #[test]
    fn full_rate_greedy_delivers_all_volume() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = UniformWorkload::paper_defaults(10, 17)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let solution = FullRateGreedy.solve(&mut ctx, &flows, &power).unwrap();
        for (flow, fs) in flows
            .iter()
            .zip(solution.schedule.as_ref().unwrap().flow_schedules())
        {
            assert!((fs.delivered_volume() - flow.volume).abs() < 1e-6);
            assert!(fs.profile.max_rate() <= power.capacity() + 1e-9);
        }
    }

    #[test]
    fn greedy_uses_more_energy_than_the_optimal_scheduler() {
        // With a superadditive power function, blasting at line rate costs
        // strictly more dynamic energy than stretching transmissions.
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = UniformWorkload::paper_defaults(20, 8)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let greedy = FullRateGreedy.solve(&mut ctx, &flows, &power).unwrap();
        let optimal = RoutedMcf::shortest_path()
            .solve(&mut ctx, &flows, &power)
            .unwrap();
        assert!(
            greedy.energy.unwrap().dynamic > optimal.energy.unwrap().dynamic,
            "greedy {} vs optimal {}",
            greedy.energy.unwrap().dynamic,
            optimal.energy.unwrap().dynamic
        );
    }

    #[test]
    fn baseline_errors_are_propagated() {
        let mut net = dcn_topology::Network::new();
        let a = net.add_node(dcn_topology::NodeKind::Host, "a");
        let b = net.add_node(dcn_topology::NodeKind::Host, "b");
        let flows = FlowSet::from_tuples([(a, b, 0.0, 1.0, 1.0)]).unwrap();
        let mut ctx = SolverContext::from_network(&net).unwrap();
        let err = RoutedMcf::shortest_path()
            .solve(&mut ctx, &flows, &x2(10.0))
            .unwrap_err();
        assert_eq!(err, crate::SolveError::Unroutable { flow: 0 });
    }

    #[cfg(feature = "legacy-api")]
    #[test]
    fn deprecated_delegates_match_the_algorithm_api() {
        // The legacy free functions stay as thin delegates until they are
        // removed; pin them against the context path so the transition
        // cannot drift.
        let topo = builders::fat_tree(4);
        let power = x2(1e9);
        let flows = UniformWorkload::paper_defaults(15, 6)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        #[allow(deprecated)]
        let legacy = [
            sp_mcf(&topo.network, &flows, &power).unwrap(),
            ecmp_mcf(&topo.network, &flows, &power, 6).unwrap(),
            least_loaded_mcf(&topo.network, &flows, &power, 4).unwrap(),
            consolidating_mcf(&topo.network, &flows, &power, 4).unwrap(),
            full_rate_greedy(&topo.network, &flows, &power).unwrap(),
        ];
        let mut modern: Vec<Box<dyn Algorithm>> = vec![
            Box::new(RoutedMcf::shortest_path()),
            Box::new(RoutedMcf::ecmp(6)),
            Box::new(RoutedMcf::least_loaded(4)),
            Box::new(ConsolidatingMcf::new(4)),
            Box::new(FullRateGreedy),
        ];
        for (old, algo) in legacy.iter().zip(&mut modern) {
            let new = algo.solve(&mut ctx, &flows, &power).unwrap();
            assert_eq!(
                new.schedule.as_ref().unwrap(),
                old,
                "{} diverges from its legacy delegate",
                algo.name()
            );
        }
    }

    use dcn_flow::FlowSet;
}
