//! **Most-Critical-First** — the optimal combinatorial algorithm for DCFS
//! (paper Algorithm 1, Section III).
//!
//! DCFS fixes the routing path of every flow and asks for transmission rates
//! and timing of minimum energy. The paper shows (Lemmas 1–2) that the
//! optimal schedule gives every flow a single constant rate, as small as
//! deadlines allow, and that the problem reduces to a variant of the
//! Yao–Demers–Shenker single-processor speed-scaling problem on *virtual
//! weights* `w'_i = w_i * |P_i|^(1/alpha)`:
//!
//! The implementation runs in two phases.
//!
//! **Phase 1 — rates** (the paper's critical-interval recursion):
//! repeatedly find the pair (link `e`, interval `[a, b]`) maximising the
//! intensity `delta` = sum of virtual weights of the unscheduled flows on
//! `e` contained in `[a, b]`, divided by the available time of `e` in
//! `[a, b]`; fix the rates of those flows to `delta / |P_i|^(1/alpha)`
//! (Theorem 1 / Eq. 13); mark the occupied time unavailable; repeat.
//!
//! **Phase 2 — timing**: with every rate fixed, each link independently
//! packs the transmissions of its flows (processing time `w_i / s_i`,
//! inside `[r_i, d_i]`) with preemptive EDF. This matches the
//! packet-switched, priority-based realisation the paper describes at the
//! end of Section III: links serialise flows independently and buffer data
//! between hops, so a flow does not need a simultaneous free window on its
//! whole path (the literal cut-through reading of Algorithm 1 can deadlock
//! on dense instances). If a link cannot fit some flow inside its span, the
//! flow's rate is raised to the smallest feasible value and the phase is
//! repeated; only if a flow gets no time at all does the algorithm report
//! [`DcfsError::Infeasible`].
//!
//! Theorem 1 / Corollary 1 of the paper prove the phase-1 rates are optimal
//! for DCFS; the rate bumps of phase 2 only trigger on instances where the
//! paper's virtual-circuit assumption itself is unsatisfiable.
//!
//! The maximum-rate constraint is intentionally ignored (the paper relaxes
//! it for DCFS); [`crate::schedule::Schedule::verify`] reports capacity
//! violations separately if callers care.

use crate::schedule::{FlowSchedule, Schedule};
use dcn_flow::{FlowId, FlowSet};
use dcn_power::{PowerFunction, RateProfile};
use dcn_solver::TimeAvailability;
use dcn_topology::{LinkId, Network, Path};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by [`most_critical_first`].
#[derive(Debug, Clone, PartialEq)]
pub enum DcfsError {
    /// The number of paths does not match the number of flows.
    PathCountMismatch {
        /// Number of flows in the instance.
        flows: usize,
        /// Number of paths supplied.
        paths: usize,
    },
    /// A path does not connect the corresponding flow's endpoints.
    PathMismatch {
        /// The flow whose path is wrong.
        flow: FlowId,
    },
    /// Under the virtual-circuit model the instance cannot meet all
    /// deadlines: some flows have no available time left on a link of their
    /// path.
    Infeasible {
        /// The link on which the conflict was detected.
        link: LinkId,
    },
}

impl fmt::Display for DcfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcfsError::PathCountMismatch { flows, paths } => {
                write!(f, "{flows} flows but {paths} paths were provided")
            }
            DcfsError::PathMismatch { flow } => {
                write!(f, "path of flow {flow} does not connect its endpoints")
            }
            DcfsError::Infeasible { link } => write!(
                f,
                "no feasible virtual-circuit schedule: link {link} has no available time left"
            ),
        }
    }
}

impl std::error::Error for DcfsError {}

/// A candidate critical interval on one link.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    intensity: f64,
    start: f64,
    end: f64,
}

/// Runs Most-Critical-First on a DCFS instance.
///
/// `paths[i]` must be the routing path of the flow with id `i`. The returned
/// schedule gives every flow a single constant rate (Lemma 1) and is optimal
/// for DCFS (Corollary 1).
///
/// # Errors
///
/// * [`DcfsError::PathCountMismatch`] / [`DcfsError::PathMismatch`] when the
///   supplied paths do not match the flows.
/// * [`DcfsError::Infeasible`] when the exclusive (virtual-circuit)
///   occupation of links leaves some flow without available time.
pub fn most_critical_first(
    network: &Network,
    flows: &FlowSet,
    paths: &[Path],
    power: &PowerFunction,
) -> Result<Schedule, DcfsError> {
    if paths.len() != flows.len() {
        return Err(DcfsError::PathCountMismatch {
            flows: flows.len(),
            paths: paths.len(),
        });
    }
    for flow in flows.iter() {
        let p = &paths[flow.id];
        if p.source() != flow.src || p.destination() != flow.dst {
            return Err(DcfsError::PathMismatch { flow: flow.id });
        }
    }
    let _ = network; // the topology is implicit in the paths

    if flows.is_empty() {
        return Ok(Schedule::new(Vec::new(), (0.0, 0.0)));
    }
    let horizon = flows.horizon();
    let alpha = power.alpha();

    // Virtual weights w'_i = w_i * |P_i|^(1/alpha).
    let virtual_weight: Vec<f64> = flows
        .iter()
        .map(|f| f.volume * (paths[f.id].len() as f64).powf(1.0 / alpha))
        .collect();

    // Per-link remaining flows and availability.
    let mut link_flows: BTreeMap<LinkId, Vec<FlowId>> = BTreeMap::new();
    for flow in flows.iter() {
        for &l in paths[flow.id].links() {
            link_flows.entry(l).or_default().push(flow.id);
        }
    }
    let mut availability: BTreeMap<LinkId, TimeAvailability> = link_flows
        .keys()
        .map(|&l| (l, TimeAvailability::new()))
        .collect();

    let mut remaining: Vec<bool> = vec![true; flows.len()];
    let mut remaining_count = flows.len();
    let mut rates: Vec<f64> = vec![0.0; flows.len()];

    // Cached best candidate per link; recomputed only when the link is dirty.
    let mut candidates: BTreeMap<LinkId, Option<Candidate>> = BTreeMap::new();
    let mut dirty: Vec<LinkId> = link_flows.keys().copied().collect();

    // Phase 1: fix the transmission rate of every flow.
    while remaining_count > 0 {
        // Refresh candidates of dirty links.
        for link in dirty.drain(..) {
            let flows_on_link = &link_flows[&link];
            let cand =
                best_candidate_on_link(flows, flows_on_link, &virtual_weight, &availability[&link]);
            candidates.insert(link, cand);
        }

        // Global critical interval.
        let Some((&critical_link, candidate)) = candidates
            .iter()
            .filter_map(|(l, c)| c.as_ref().map(|c| (l, *c)))
            .max_by(|a, b| {
                a.1.intensity
                    .partial_cmp(&b.1.intensity)
                    .expect("intensities are comparable")
                    .then_with(|| b.0.cmp(a.0))
            })
        else {
            // No candidate but flows remain: they sit on links with no
            // remaining flows, which cannot happen — treat as infeasible.
            let link = *link_flows.keys().next().expect("at least one link");
            return Err(DcfsError::Infeasible { link });
        };
        if !candidate.intensity.is_finite() {
            return Err(DcfsError::Infeasible {
                link: critical_link,
            });
        }

        // Flows of the critical interval on the critical link: their whole
        // remaining (available) span lies inside the interval.
        let critical_avail = &availability[&critical_link];
        let selected: Vec<FlowId> = link_flows[&critical_link]
            .iter()
            .copied()
            .filter(|&id| {
                remaining[id]
                    && contained_in_available(
                        flows.flow(id),
                        candidate.start,
                        candidate.end,
                        critical_avail,
                    )
            })
            .collect();
        debug_assert!(!selected.is_empty(), "critical interval without flows");

        for &id in &selected {
            let hops = paths[id].len() as f64;
            // Rate of the flow from the critical intensity (Theorem 1 / Eq. 13).
            rates[id] = candidate.intensity / hops.powf(1.0 / alpha);

            remaining[id] = false;
            remaining_count -= 1;
            // Remove the flow from its links and mark them dirty.
            for &l in paths[id].links() {
                if let Some(list) = link_flows.get_mut(&l) {
                    list.retain(|&other| other != id);
                }
                if !dirty.contains(&l) {
                    dirty.push(l);
                }
            }
        }

        // Consume the critical interval on the critical link (the classical
        // YDS removal step, expressed as blocked time).
        let slots =
            availability[&critical_link].available_subintervals(candidate.start, candidate.end);
        let avail = availability
            .get_mut(&critical_link)
            .expect("availability exists for the critical link");
        for (s, e) in slots {
            avail.block(s, e);
        }
        if !dirty.contains(&critical_link) {
            dirty.push(critical_link);
        }
    }

    // Phase 2: per-link preemptive EDF packing at the fixed rates, with a
    // bounded rate-raising loop for the (rare) flows that do not fit.
    let link_profiles = pack_links(flows, paths, &link_flows_all(flows, paths), &mut rates)?;

    let flow_schedules = flows
        .iter()
        .map(|f| {
            let per_link: BTreeMap<LinkId, RateProfile> = paths[f.id]
                .links()
                .iter()
                .map(|&l| {
                    (
                        l,
                        link_profiles
                            .get(&l)
                            .and_then(|per_flow| per_flow.get(&f.id))
                            .cloned()
                            .unwrap_or_default(),
                    )
                })
                .collect();
            // Nominal (destination-arrival) profile: the profile on the last
            // link of the path.
            let nominal = paths[f.id]
                .links()
                .last()
                .and_then(|l| per_link.get(l).cloned())
                .unwrap_or_default();
            FlowSchedule::per_link(f.id, paths[f.id].clone(), nominal, per_link)
        })
        .collect();
    Ok(Schedule::new(flow_schedules, horizon))
}

/// All flows per link (regardless of scheduling state), for phase 2.
fn link_flows_all(flows: &FlowSet, paths: &[Path]) -> BTreeMap<LinkId, Vec<FlowId>> {
    let mut map: BTreeMap<LinkId, Vec<FlowId>> = BTreeMap::new();
    for flow in flows.iter() {
        for &l in paths[flow.id].links() {
            map.entry(l).or_default().push(flow.id);
        }
    }
    map
}

/// Phase 2: turn the fixed rates into an explicit, feasible per-link timing.
///
/// First, every flow's rate is raised (if necessary) to the per-link YDS
/// rate of each link it traverses — the smallest rate at which that link
/// alone can serve all of its flows within their spans. Phase-1 rates
/// already exceed those values on the link where the flow was critical, so
/// this bump only triggers when the paper's virtual-circuit assumption is
/// itself unsatisfiable. Then every link independently packs its flows with
/// preemptive EDF at the final rates, which is guaranteed to meet every
/// deadline.
///
/// Returns, per link, the transmission profile of every flow on that link.
fn pack_links(
    flows: &FlowSet,
    paths: &[Path],
    link_flows: &BTreeMap<LinkId, Vec<FlowId>>,
    rates: &mut [f64],
) -> Result<BTreeMap<LinkId, BTreeMap<FlowId, RateProfile>>, DcfsError> {
    use dcn_solver::yds::{edf_schedule, Job};
    let _ = paths;

    // Repair pass: the phase-1 rates satisfy the per-link demand condition
    // (program (P1): for every link and every interval, the transmission
    // times of the contained flows fit) whenever the paper's virtual-circuit
    // assumption is satisfiable. Cross-link interactions on dense instances
    // can leave a small deficit on links that were never critical for some
    // of their flows; scale the rates of the offending flows up just enough
    // to restore the condition. Raising rates only shrinks transmission
    // times, so the repair converges monotonically.
    for _pass in 0..16 {
        let mut changed = false;
        for flow_ids in link_flows.values() {
            let mut points: Vec<f64> = flow_ids
                .iter()
                .flat_map(|&id| {
                    let f = flows.flow(id);
                    [f.release, f.deadline]
                })
                .collect();
            points.sort_by(|a, b| a.partial_cmp(b).expect("finite flow times"));
            points.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            for (ia, &a) in points.iter().enumerate() {
                for &b in &points[ia + 1..] {
                    let contained: Vec<FlowId> = flow_ids
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let f = flows.flow(id);
                            f.release >= a - 1e-12 && f.deadline <= b + 1e-12
                        })
                        .collect();
                    let total: f64 = contained
                        .iter()
                        .map(|&id| flows.flow(id).volume / rates[id])
                        .sum();
                    let capacity_time = b - a;
                    if total > capacity_time * (1.0 + 1e-9) {
                        let factor = total / capacity_time;
                        for id in contained {
                            rates[id] *= factor * (1.0 + 1e-12);
                        }
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Per-link EDF packing at the final rates.
    let mut result: BTreeMap<LinkId, BTreeMap<FlowId, RateProfile>> = BTreeMap::new();
    for (&link, flow_ids) in link_flows {
        // Jobs processed at unit speed whose work is the transmission time
        // of the flow on this link.
        let jobs: Vec<Job> = flow_ids
            .iter()
            .map(|&id| {
                let f = flows.flow(id);
                Job::new(id, f.release, f.deadline, f.volume / rates[id])
            })
            .collect();
        let horizon_start = jobs.iter().map(|j| j.release).fold(f64::INFINITY, f64::min);
        let horizon_end = jobs
            .iter()
            .map(|j| j.deadline)
            .fold(f64::NEG_INFINITY, f64::max);
        let placements = edf_schedule(&jobs, 1.0, &[(horizon_start, horizon_end)]);

        let mut per_flow = BTreeMap::new();
        for placement in placements {
            let id = placement.id;
            let flow = flows.flow(id);
            let needed = flow.volume / rates[id];
            // Time the placement spends inside the flow's span.
            let inside: f64 = placement
                .windows
                .iter()
                .map(|&(s, e)| (e.min(flow.deadline) - s.max(flow.release)).max(0.0))
                .sum();
            if inside + 1e-6 * needed.max(1.0) < needed {
                // Cannot happen when the per-link YDS rates are respected;
                // report the link rather than panic if numerics misbehave.
                return Err(DcfsError::Infeasible { link });
            }
            let mut profile = RateProfile::new();
            for &(s, e) in &placement.windows {
                let s = s.max(flow.release);
                let e = e.min(flow.deadline);
                if e > s {
                    profile.add_rate(s, e, rates[id]);
                }
            }
            per_flow.insert(id, profile);
        }
        result.insert(link, per_flow);
    }
    Ok(result)
}

/// Returns `true` when the *available* part of the flow's span on a link
/// lies entirely inside `[a, b]` — the containment notion the critical
/// interval uses once earlier critical intervals have been removed
/// (equivalent to the time-contraction step of classical YDS).
fn contained_in_available(
    flow: &dcn_flow::Flow,
    a: f64,
    b: f64,
    availability: &TimeAvailability,
) -> bool {
    availability.available_between(flow.release, a.min(flow.deadline)) < 1e-9
        && availability.available_between(b.max(flow.release), flow.deadline) < 1e-9
}

/// The maximum-intensity interval on one link, over the flows that remain on
/// it.
fn best_candidate_on_link(
    flows: &FlowSet,
    flows_on_link: &[FlowId],
    virtual_weight: &[f64],
    availability: &TimeAvailability,
) -> Option<Candidate> {
    if flows_on_link.is_empty() {
        return None;
    }
    let mut points: Vec<f64> = flows_on_link
        .iter()
        .flat_map(|&id| {
            let f = flows.flow(id);
            [f.release, f.deadline]
        })
        .collect();
    points.sort_by(|a, b| a.partial_cmp(b).expect("finite flow times"));
    points.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut best: Option<Candidate> = None;
    for (ia, &a) in points.iter().enumerate() {
        for &b in &points[ia + 1..] {
            let work: f64 = flows_on_link
                .iter()
                .filter(|&&id| contained_in_available(flows.flow(id), a, b, availability))
                .map(|&id| virtual_weight[id])
                .sum();
            if work <= 0.0 {
                continue;
            }
            let available = availability.available_between(a, b);
            if available <= 1e-12 {
                // Nothing can be placed here any more; the contained flows'
                // remaining spans are empty only if they were already
                // scheduled, so skip the degenerate interval.
                continue;
            }
            let intensity = work / available;
            let better = match &best {
                None => true,
                Some(c) => intensity > c.intensity + 1e-15,
            };
            if better {
                best = Some(Candidate {
                    intensity,
                    start: a,
                    end: b,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Routing;
    use dcn_flow::workload::UniformWorkload;
    use dcn_solver::yds::Job;
    use dcn_topology::builders;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * (1.0 + a.abs().max(b.abs()))
    }

    /// Unlimited-capacity quadratic power function (the paper's `x^2`).
    fn x2() -> PowerFunction {
        PowerFunction::speed_scaling_only(1.0, 2.0, 1e9)
    }

    /// The paper's Example 1: line A-B-C, f(x) = x^2, two flows.
    fn example1() -> (builders::BuiltTopology, FlowSet, Vec<Path>) {
        let topo = builders::line_with_capacity(3, 1e9);
        let (a, b, c) = (topo.hosts()[0], topo.hosts()[1], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([
            (a, c, 2.0, 4.0, 6.0), // j1
            (a, b, 1.0, 3.0, 8.0), // j2
        ])
        .unwrap();
        let paths = Routing::ShortestPath
            .compute_on(&topo.csr(), &flows)
            .unwrap();
        (topo, flows, paths)
    }

    #[test]
    fn example1_matches_the_paper_closed_form() {
        let (topo, flows, paths) = example1();
        let schedule = most_critical_first(&topo.network, &flows, &paths, &x2()).unwrap();
        schedule.verify_on(&topo.csr(), &flows, &x2()).unwrap();

        // Paper: sqrt(2) * s1 = s2 = (8 + 6 sqrt 2) / 3.
        let s2_expected = (8.0 + 6.0 * 2f64.sqrt()) / 3.0;
        let s1_expected = s2_expected / 2f64.sqrt();
        let s1 = schedule.flow_schedule(0).unwrap().profile.max_rate();
        let s2 = schedule.flow_schedule(1).unwrap().profile.max_rate();
        assert!(close(s1, s1_expected), "s1 = {s1}, expected {s1_expected}");
        assert!(close(s2, s2_expected), "s2 = {s2}, expected {s2_expected}");

        // Objective Phi = 2 * 6 * s1 + 8 * s2 (for alpha = 2).
        let expected_energy = 2.0 * 6.0 * s1_expected + 8.0 * s2_expected;
        let energy = schedule.energy(&x2()).total();
        assert!(
            close(energy, expected_energy),
            "energy {energy} vs {expected_energy}"
        );
    }

    #[test]
    fn single_flow_runs_at_its_density() {
        let topo = builders::line_with_capacity(4, 1e9);
        let flows =
            FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[3], 1.0, 5.0, 8.0)]).unwrap();
        let paths = Routing::ShortestPath
            .compute_on(&topo.csr(), &flows)
            .unwrap();
        let schedule = most_critical_first(&topo.network, &flows, &paths, &x2()).unwrap();
        schedule.verify_on(&topo.csr(), &flows, &x2()).unwrap();
        let rate = schedule.flow_schedule(0).unwrap().profile.max_rate();
        assert!(close(rate, 2.0), "a lone flow transmits at its density");
    }

    #[test]
    fn disjoint_flows_keep_their_densities() {
        // Two flows that share no link run independently at their densities.
        let topo = builders::fat_tree(4);
        let big = PowerFunction::speed_scaling_only(1.0, 2.0, 1e9);
        let h = topo.hosts();
        let flows = FlowSet::from_tuples([
            (h[0], h[1], 0.0, 4.0, 8.0),   // same edge switch, density 2
            (h[14], h[15], 0.0, 2.0, 6.0), // same edge switch, density 3
        ])
        .unwrap();
        let paths = Routing::ShortestPath
            .compute_on(&topo.csr(), &flows)
            .unwrap();
        assert!(paths[0].links().iter().all(|l| !paths[1].contains_link(*l)));
        let schedule = most_critical_first(&topo.network, &flows, &paths, &big).unwrap();
        assert!(close(
            schedule.flow_schedule(0).unwrap().profile.max_rate(),
            2.0
        ));
        assert!(close(
            schedule.flow_schedule(1).unwrap().profile.max_rate(),
            3.0
        ));
    }

    #[test]
    fn single_link_instance_matches_yds() {
        // All flows between the same adjacent pair of hosts: |P| = 1, so
        // Most-Critical-First degenerates to YDS on the raw volumes.
        let topo = builders::line_with_capacity(2, 1e9);
        let (a, b) = (topo.hosts()[0], topo.hosts()[1]);
        let flows = FlowSet::from_tuples([
            (a, b, 0.0, 4.0, 6.0),
            (a, b, 1.0, 3.0, 4.0),
            (a, b, 2.0, 8.0, 5.0),
        ])
        .unwrap();
        let paths = Routing::ShortestPath
            .compute_on(&topo.csr(), &flows)
            .unwrap();
        let schedule = most_critical_first(&topo.network, &flows, &paths, &x2()).unwrap();
        schedule.verify_on(&topo.csr(), &flows, &x2()).unwrap();

        let jobs: Vec<Job> = flows
            .iter()
            .map(|f| Job::new(f.id, f.release, f.deadline, f.volume))
            .collect();
        let yds = dcn_solver::yds_schedule(&jobs);
        assert!(close(schedule.energy(&x2()).total(), yds.energy(&x2())));
    }

    #[test]
    fn deadlines_met_on_random_fat_tree_workloads() {
        let topo = builders::fat_tree(4);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 1e9);
        let graph = topo.csr();
        for seed in 0..5 {
            let flows = UniformWorkload::paper_defaults(40, seed)
                .generate(topo.hosts())
                .unwrap();
            let paths = Routing::ShortestPath.compute_on(&graph, &flows).unwrap();
            let schedule = most_critical_first(&topo.network, &flows, &paths, &power).unwrap();
            schedule
                .verify_on(&graph, &flows, &power)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn alpha_changes_the_virtual_weights_but_not_feasibility() {
        let (topo, flows, paths) = example1();
        for alpha in [1.5, 2.0, 3.0, 4.0] {
            let power = PowerFunction::speed_scaling_only(1.0, alpha, 1e9);
            let schedule = most_critical_first(&topo.network, &flows, &paths, &power).unwrap();
            schedule.verify_on(&topo.csr(), &flows, &power).unwrap();
        }
    }

    #[test]
    fn higher_alpha_never_lowers_energy_of_same_instance() {
        // With mu = 1 and rates above 1, x^4 costs more than x^2.
        let (topo, flows, paths) = example1();
        let e2 = most_critical_first(&topo.network, &flows, &paths, &x2())
            .unwrap()
            .energy(&x2())
            .total();
        let x4 = PowerFunction::speed_scaling_only(1.0, 4.0, 1e9);
        let e4 = most_critical_first(&topo.network, &flows, &paths, &x4)
            .unwrap()
            .energy(&x4)
            .total();
        assert!(e4 > e2);
    }

    #[test]
    fn path_count_mismatch_is_reported() {
        let (topo, flows, paths) = example1();
        let err = most_critical_first(&topo.network, &flows, &paths[..1], &x2()).unwrap_err();
        assert_eq!(err, DcfsError::PathCountMismatch { flows: 2, paths: 1 });
    }

    #[test]
    fn wrong_path_endpoints_are_reported() {
        let (topo, flows, mut paths) = example1();
        paths.swap(0, 1);
        let err = most_critical_first(&topo.network, &flows, &paths, &x2()).unwrap_err();
        assert!(matches!(err, DcfsError::PathMismatch { .. }));
    }

    #[test]
    fn empty_instance_yields_empty_schedule() {
        let topo = builders::line(3);
        let flows = FlowSet::from_flows(vec![]).unwrap();
        let schedule = most_critical_first(&topo.network, &flows, &[], &x2()).unwrap();
        assert!(schedule.is_empty());
        assert_eq!(schedule.energy(&x2()).total(), 0.0);
    }

    #[test]
    fn energy_is_never_better_than_single_flow_lower_bound() {
        // Each flow in isolation costs at least |P_i| * mu * w_i * D_i^(alpha-1)
        // (Lemma 2); the schedule of the whole instance can only cost more.
        let topo = builders::fat_tree(4);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 1e9);
        let flows = UniformWorkload::paper_defaults(30, 9)
            .generate(topo.hosts())
            .unwrap();
        let paths = Routing::ShortestPath
            .compute_on(&topo.csr(), &flows)
            .unwrap();
        let schedule = most_critical_first(&topo.network, &flows, &paths, &power).unwrap();
        let lower: f64 = flows
            .iter()
            .map(|f| paths[f.id].len() as f64 * power.dynamic_power(f.density()) * f.span_length())
            .sum();
        assert!(schedule.energy(&power).total() >= lower - 1e-6);
    }
}
