//! The pluggable scheduler interface: one [`Algorithm`] trait, one
//! implementation per scheme, and a string-keyed [`AlgorithmRegistry`].
//!
//! Every scheduling/routing scheme in the reproduction — the paper's two
//! algorithms, the five comparison baselines, the fractional lower bound
//! and the exhaustive optimum — implements [`Algorithm`] and plugs into a
//! shared [`SolverContext`], so new workloads and experiment harnesses
//! select schedulers **by name** instead of wiring bespoke call paths:
//!
//! | name | scheme |
//! |------|--------|
//! | `dcfsr` | Random-Schedule (paper Algorithm 2): joint routing + scheduling |
//! | `sp-mcf` | shortest-path routing + Most-Critical-First (paper's `SP+MCF`) |
//! | `ecmp` | seeded ECMP routing + Most-Critical-First |
//! | `least-loaded` | volume-aware k-shortest-path routing + Most-Critical-First |
//! | `consolidate` | ElasticTree-style link-minimising routing + Most-Critical-First |
//! | `greedy` | shortest path at full line rate, no energy management |
//! | `lb` | the per-interval fractional relaxation (bound only, no schedule) |
//! | `exact` | exhaustive path enumeration + Most-Critical-First (tiny instances) |

use crate::context::SolverContext;
use crate::dcfs::most_critical_first;
use crate::dcfsr::{RandomSchedule, RandomScheduleConfig};
use crate::error::SolveError;
use crate::routing::{Routing, RoutingError};
use crate::schedule::{FlowSchedule, Schedule};
use crate::solution::Solution;
use dcn_flow::FlowSet;
use dcn_power::{PowerFunction, RateProfile};
use dcn_solver::fmcf::FmcfSolverConfig;
use dcn_topology::{k_shortest_paths_on, Path};
use std::fmt;

/// A deadline-constrained flow scheduler that runs on a shared
/// [`SolverContext`].
///
/// Implementations are cheap, reusable objects: construct (or
/// [`AlgorithmRegistry::create`]) once, call [`Algorithm::solve`] many
/// times. The context carries all warm per-network state; the algorithm
/// object only carries configuration. The `Send` bound lets the online
/// engine dispatch registry-created instances to pod-shard worker threads.
pub trait Algorithm: Send {
    /// The registry name of the algorithm (stable, lowercase, kebab-case).
    fn name(&self) -> &str;

    /// Re-seeds the algorithm's randomness, if it has any (`dcfsr`
    /// rounding, `ecmp` path draws). Deterministic algorithms ignore this.
    fn set_seed(&mut self, _seed: u64) {}

    /// Solves one instance: produces a [`Solution`] for `flows` on the
    /// context's network under `power`.
    ///
    /// # Errors
    ///
    /// Returns a [`SolveError`] for invalid input (empty flow set,
    /// endpoints outside the network, disconnected commodities) or for
    /// algorithm-specific failures (infeasibility, enumeration budget).
    fn solve(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<Solution, SolveError>;
}

impl fmt::Debug for dyn Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Algorithm({})", self.name())
    }
}

/// **Random-Schedule** (paper Algorithm 2) as an [`Algorithm`]: relaxation
/// → decomposition → randomized rounding → density scheduling.
///
/// The solution carries the fractional lower bound (computed as a
/// by-product of the relaxation) and the rounding diagnostics.
#[derive(Debug, Clone, Default)]
pub struct Dcfsr {
    config: RandomScheduleConfig,
}

impl Dcfsr {
    /// Creates the algorithm with an explicit configuration.
    pub fn new(config: RandomScheduleConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RandomScheduleConfig {
        &self.config
    }
}

impl Algorithm for Dcfsr {
    fn name(&self) -> &str {
        "dcfsr"
    }

    fn set_seed(&mut self, seed: u64) {
        self.config.seed = seed;
    }

    fn solve(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<Solution, SolveError> {
        let relaxation = ctx.relax(flows, power, &self.config.fmcf)?;
        let outcome = RandomSchedule::new(self.config).run_with_relaxation_threads(
            ctx.network(),
            flows,
            power,
            &relaxation,
            ctx.parallelism().threads,
        )?;
        let energy = outcome.schedule.energy(power);
        let mut solution = Solution::scheduled(self.name(), outcome.schedule, energy);
        solution.lower_bound = Some(relaxation.lower_bound);
        solution.diagnostics.rounding_attempts = Some(outcome.attempts);
        solution.diagnostics.capacity_excess = Some(outcome.capacity_excess);
        solution.diagnostics.relaxation_intervals = Some(relaxation.intervals.len());
        Ok(solution)
    }
}

/// A routing strategy followed by the optimal DCFS scheduler
/// (Most-Critical-First): the shape of the paper's `SP+MCF` baseline and
/// its ECMP / least-loaded variants.
#[derive(Debug, Clone)]
pub struct RoutedMcf {
    name: String,
    routing: Routing,
}

impl RoutedMcf {
    /// The paper's `SP+MCF` baseline (registry name `sp-mcf`).
    pub fn shortest_path() -> Self {
        Self {
            name: "sp-mcf".to_string(),
            routing: Routing::ShortestPath,
        }
    }

    /// Seeded ECMP routing + Most-Critical-First (registry name `ecmp`).
    pub fn ecmp(seed: u64) -> Self {
        Self {
            name: "ecmp".to_string(),
            routing: Routing::Ecmp { seed },
        }
    }

    /// Volume-aware k-shortest-path routing + Most-Critical-First
    /// (registry name `least-loaded`).
    pub fn least_loaded(k: usize) -> Self {
        Self {
            name: "least-loaded".to_string(),
            routing: Routing::LeastLoadedKsp { k },
        }
    }

    /// A custom-named pairing of any [`Routing`] strategy with
    /// Most-Critical-First, for experiment-specific registrations.
    pub fn custom(name: impl Into<String>, routing: Routing) -> Self {
        Self {
            name: name.into(),
            routing,
        }
    }

    /// The routing strategy in use.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }
}

impl Algorithm for RoutedMcf {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_seed(&mut self, seed: u64) {
        if let Routing::Ecmp { seed: s } = &mut self.routing {
            *s = seed;
        }
    }

    fn solve(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<Solution, SolveError> {
        ctx.validate_flow_shape(flows)?;
        let paths = ctx.route(&self.routing, flows)?;
        let schedule = most_critical_first(ctx.network(), flows, &paths, power)?;
        let energy = schedule.energy(power);
        Ok(Solution::scheduled(self.name.clone(), schedule, energy))
    }
}

/// The consolidation-style (ElasticTree-like) baseline as an
/// [`Algorithm`] (registry name `consolidate`): flows are routed greedily,
/// in decreasing volume order, onto the candidate shortest path that
/// activates the fewest *new* links (ties broken by committed volume, then
/// hop count), then scheduled optimally with Most-Critical-First.
#[derive(Debug, Clone)]
pub struct ConsolidatingMcf {
    k: usize,
}

impl ConsolidatingMcf {
    /// Creates the baseline considering `k` candidate shortest paths per
    /// flow.
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1) }
    }
}

impl Default for ConsolidatingMcf {
    fn default() -> Self {
        Self::new(4)
    }
}

impl Algorithm for ConsolidatingMcf {
    fn name(&self) -> &str {
        "consolidate"
    }

    fn solve(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<Solution, SolveError> {
        ctx.validate_flow_shape(flows)?;

        let mut order: Vec<usize> = (0..flows.len()).collect();
        order.sort_by(|&a, &b| {
            flows
                .flow(b)
                .volume
                .partial_cmp(&flows.flow(a).volume)
                .expect("finite volumes")
        });

        let (graph, engine, _) = ctx.parts();
        let mut active = vec![false; graph.link_count()];
        let mut committed = vec![0.0_f64; graph.link_count()];
        let mut paths: Vec<Option<Path>> = vec![None; flows.len()];
        for id in order {
            let f = flows.flow(id);
            let candidates = k_shortest_paths_on(graph, engine, f.src, f.dst, self.k, |_| 1.0);
            if candidates.is_empty() {
                return Err(SolveError::from(RoutingError::Unreachable { flow: f.id }));
            }
            let best = candidates
                .into_iter()
                .min_by(|a, b| {
                    let new_a = a.links().iter().filter(|l| !active[l.index()]).count();
                    let new_b = b.links().iter().filter(|l| !active[l.index()]).count();
                    let load_a = a
                        .links()
                        .iter()
                        .map(|l| committed[l.index()])
                        .fold(0.0_f64, f64::max);
                    let load_b = b
                        .links()
                        .iter()
                        .map(|l| committed[l.index()])
                        .fold(0.0_f64, f64::max);
                    new_a
                        .cmp(&new_b)
                        .then(load_a.partial_cmp(&load_b).expect("finite volumes"))
                        .then(a.len().cmp(&b.len()))
                })
                .expect("candidates non-empty");
            for &l in best.links() {
                active[l.index()] = true;
                committed[l.index()] += f.volume;
            }
            paths[id] = Some(best);
        }
        let paths: Vec<Path> = paths
            .into_iter()
            .map(|p| p.expect("every flow routed"))
            .collect();
        let schedule = most_critical_first(ctx.network(), flows, &paths, power)?;
        let energy = schedule.energy(power);
        Ok(Solution::scheduled(self.name(), schedule, energy))
    }
}

/// The "no energy management" baseline as an [`Algorithm`] (registry name
/// `greedy`): every flow is routed on its shortest path and transmitted at
/// full line rate from its release time.
///
/// The schedule ignores contention, so it may exceed link capacities when
/// many flows collide; [`SolverContext::verify`] reports that separately.
/// It exists to quantify how much energy headroom deadline-aware
/// scheduling exploits.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullRateGreedy;

impl Algorithm for FullRateGreedy {
    fn name(&self) -> &str {
        "greedy"
    }

    fn solve(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<Solution, SolveError> {
        ctx.validate_flow_shape(flows)?;
        let paths = ctx.route(&Routing::ShortestPath, flows)?;
        let horizon = flows.horizon();
        let rate = power.capacity();
        let flow_schedules = flows
            .iter()
            .map(|f| {
                // Transmit at full rate from the release; if even full rate
                // cannot meet the deadline, stretch to the density (the
                // flow is then infeasible at line rate and verification
                // will say so).
                let duration = (f.volume / rate).min(f.span_length());
                let actual_rate = f.volume / duration;
                FlowSchedule::uniform(
                    f.id,
                    paths[f.id].clone(),
                    RateProfile::constant(f.release, f.release + duration, actual_rate),
                )
            })
            .collect();
        let schedule = Schedule::new(flow_schedules, horizon);
        let energy = schedule.energy(power);
        Ok(Solution::scheduled(self.name(), schedule, energy))
    }
}

/// The per-interval fractional relaxation as an [`Algorithm`] (registry
/// name `lb`): computes the lower bound `LB` that normalises the paper's
/// Fig. 2, without producing a schedule.
#[derive(Debug, Clone, Default)]
pub struct RelaxationLb {
    config: FmcfSolverConfig,
}

impl RelaxationLb {
    /// Creates the bound with an explicit Frank–Wolfe configuration.
    pub fn new(config: FmcfSolverConfig) -> Self {
        Self { config }
    }
}

impl Algorithm for RelaxationLb {
    fn name(&self) -> &str {
        "lb"
    }

    fn solve(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<Solution, SolveError> {
        let relaxation = ctx.relax(flows, power, &self.config)?;
        let mut solution = Solution::bound_only(self.name(), relaxation.lower_bound);
        solution.diagnostics.relaxation_intervals = Some(relaxation.intervals.len());
        Ok(solution)
    }
}

/// Exact DCFSR by exhaustive path enumeration as an [`Algorithm`]
/// (registry name `exact`) — for tiny instances only; see
/// [`crate::exact`].
#[derive(Debug, Clone, Copy)]
pub struct ExactBrute {
    /// Candidate paths enumerated per flow (Yen's k-shortest by hop
    /// count).
    pub paths_per_flow: usize,
    /// Upper bound on `paths_per_flow ^ flows`; larger instances return
    /// [`SolveError::TooLarge`].
    pub max_assignments: u128,
}

impl ExactBrute {
    /// Creates the enumerator with an explicit budget.
    pub fn new(paths_per_flow: usize, max_assignments: u128) -> Self {
        Self {
            paths_per_flow,
            max_assignments,
        }
    }
}

impl Default for ExactBrute {
    fn default() -> Self {
        Self::new(3, 100_000)
    }
}

impl Algorithm for ExactBrute {
    fn name(&self) -> &str {
        "exact"
    }

    fn solve(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<Solution, SolveError> {
        ctx.validate_flow_shape(flows)?;
        let outcome = crate::exact::exact_dcfsr_ctx(
            ctx,
            flows,
            power,
            self.paths_per_flow,
            self.max_assignments,
        )?;
        let energy = outcome.schedule.energy(power);
        let mut solution = Solution::scheduled(self.name(), outcome.schedule, energy);
        solution.diagnostics.assignments_tried = Some(outcome.assignments_tried);
        Ok(solution)
    }
}

/// A string-keyed registry of [`Algorithm`] factories, backed by the
/// shared [`Registry`](crate::registry::Registry).
///
/// [`AlgorithmRegistry::with_defaults`] registers every scheme shipped by
/// this crate (see the [module docs](self) for the name table); harnesses
/// can [`AlgorithmRegistry::register`] their own factories — or re-register
/// a default name with different configuration — and select algorithms by
/// name from CLI flags or experiment descriptors.
#[derive(Clone)]
pub struct AlgorithmRegistry {
    inner: crate::registry::Registry<dyn Algorithm>,
}

impl AlgorithmRegistry {
    /// Creates an empty registry.
    pub fn empty() -> Self {
        Self {
            inner: crate::registry::Registry::new("Algorithm::name()", |a| a.name()),
        }
    }

    /// Creates a registry with every built-in algorithm registered, in the
    /// documented order: `dcfsr`, `sp-mcf`, `ecmp`, `least-loaded`,
    /// `consolidate`, `greedy`, `lb`, `exact`.
    pub fn with_defaults() -> Self {
        let mut registry = Self::empty();
        registry.register("dcfsr", || Box::new(Dcfsr::default()));
        registry.register("sp-mcf", || Box::new(RoutedMcf::shortest_path()));
        registry.register("ecmp", || Box::new(RoutedMcf::ecmp(0)));
        registry.register("least-loaded", || Box::new(RoutedMcf::least_loaded(4)));
        registry.register("consolidate", || Box::new(ConsolidatingMcf::default()));
        registry.register("greedy", || Box::new(FullRateGreedy));
        registry.register("lb", || Box::new(RelaxationLb::default()));
        registry.register("exact", || Box::new(ExactBrute::default()));
        registry
    }

    /// Registers (or replaces) a factory under `name`.
    ///
    /// # Panics
    ///
    /// Panics if the factory produces an algorithm whose
    /// [`Algorithm::name`] differs from `name` — the registry's round-trip
    /// invariant (`create(name).name() == name`).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn Algorithm> + Send + Sync + 'static,
    ) {
        self.inner.register(name, factory);
    }

    /// Instantiates the algorithm registered under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::UnknownAlgorithm`] for unregistered names.
    pub fn create(&self, name: &str) -> Result<Box<dyn Algorithm>, SolveError> {
        self.inner
            .create(name)
            .ok_or_else(|| SolveError::UnknownAlgorithm {
                name: name.to_string(),
            })
    }

    /// Returns `true` if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.contains(name)
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.inner.names()
    }
}

impl Default for AlgorithmRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl fmt::Debug for AlgorithmRegistry {
    /// The factories are opaque closures, so print the registered names.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlgorithmRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_flow::workload::UniformWorkload;
    use dcn_topology::builders;

    fn x2(capacity: f64) -> PowerFunction {
        PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
    }

    #[test]
    fn registry_defaults_cover_every_scheme() {
        let registry = AlgorithmRegistry::with_defaults();
        assert_eq!(
            registry.names(),
            vec![
                "dcfsr",
                "sp-mcf",
                "ecmp",
                "least-loaded",
                "consolidate",
                "greedy",
                "lb",
                "exact"
            ]
        );
        for name in registry.names() {
            assert!(registry.contains(name));
            assert_eq!(registry.create(name).unwrap().name(), name);
        }
        assert_eq!(
            registry.create("nope").unwrap_err(),
            SolveError::UnknownAlgorithm {
                name: "nope".to_string()
            }
        );
    }

    #[test]
    fn register_replaces_and_rejects_mismatched_names() {
        let mut registry = AlgorithmRegistry::empty();
        registry.register("dcfsr", || {
            Box::new(Dcfsr::new(RandomScheduleConfig {
                max_rounding_attempts: 3,
                ..Default::default()
            }))
        });
        assert_eq!(registry.names(), vec!["dcfsr"]);
        // Replacing under the same name keeps a single entry.
        registry.register("dcfsr", || Box::new(Dcfsr::default()));
        assert_eq!(registry.names(), vec!["dcfsr"]);
    }

    #[test]
    #[should_panic(expected = "registry name must match")]
    fn register_panics_on_name_mismatch() {
        let mut registry = AlgorithmRegistry::empty();
        registry.register("not-dcfsr", || Box::new(Dcfsr::default()));
    }

    #[test]
    fn dcfsr_solution_matches_the_legacy_outcome() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = UniformWorkload::paper_defaults(20, 5)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut algo = Dcfsr::default();
        algo.set_seed(5);
        let solution = algo.solve(&mut ctx, &flows, &power).unwrap();

        let relaxation = crate::relaxation::interval_relaxation_on(
            &topo.csr(),
            &flows,
            &power,
            &FmcfSolverConfig::default(),
        );
        let legacy = RandomSchedule::new(RandomScheduleConfig {
            seed: 5,
            ..Default::default()
        })
        .run_with_relaxation(&topo.network, &flows, &power, &relaxation)
        .unwrap();
        assert_eq!(solution.schedule.as_ref().unwrap(), &legacy.schedule);
        assert_eq!(solution.lower_bound, Some(relaxation.lower_bound));
        assert_eq!(
            solution.diagnostics.rounding_attempts,
            Some(legacy.attempts)
        );
        assert_eq!(
            solution.diagnostics.capacity_excess,
            Some(legacy.capacity_excess)
        );
    }

    #[test]
    fn every_scheduling_algorithm_verifies_on_a_fat_tree() {
        let topo = builders::fat_tree(4);
        let power = x2(1e9);
        let flows = UniformWorkload::paper_defaults(12, 3)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let registry = AlgorithmRegistry::with_defaults();
        for name in ["dcfsr", "sp-mcf", "ecmp", "least-loaded", "consolidate"] {
            let mut algo = registry.create(name).unwrap();
            algo.set_seed(7);
            let solution = algo.solve(&mut ctx, &flows, &power).unwrap();
            let schedule = solution.schedule.as_ref().unwrap();
            ctx.verify(schedule, &flows, &power)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(solution.algorithm(), name);
            assert!(solution.total_energy().unwrap() > 0.0);
        }
    }

    #[test]
    fn lb_is_a_bound_for_every_scheduler() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = UniformWorkload::paper_defaults(15, 9)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let lb = RelaxationLb::default()
            .solve(&mut ctx, &flows, &power)
            .unwrap()
            .lower_bound
            .unwrap();
        assert!(lb > 0.0);
        for name in ["dcfsr", "sp-mcf"] {
            let mut algo = AlgorithmRegistry::with_defaults().create(name).unwrap();
            let energy = algo
                .solve(&mut ctx, &flows, &power)
                .unwrap()
                .total_energy()
                .unwrap();
            assert!(energy >= lb - 1e-6, "{name}: {energy} < LB {lb}");
        }
    }

    #[test]
    fn exact_beats_or_matches_dcfsr_on_parallel_links() {
        let topo = builders::parallel(3, 100.0);
        let flows =
            FlowSet::from_tuples((0..3).map(|_| (topo.source(), topo.sink(), 0.0, 2.0, 4.0)))
                .unwrap();
        let power = x2(100.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let exact = ExactBrute::default()
            .solve(&mut ctx, &flows, &power)
            .unwrap();
        let dcfsr = Dcfsr::default().solve(&mut ctx, &flows, &power).unwrap();
        assert!(exact.diagnostics.assignments_tried.unwrap() > 0);
        assert!(exact.total_energy().unwrap() <= dcfsr.total_energy().unwrap() + 1e-6);
        ctx.verify(exact.schedule.as_ref().unwrap(), &flows, &power)
            .unwrap();
    }

    #[test]
    fn greedy_delivers_everything_at_line_rate() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = UniformWorkload::paper_defaults(10, 17)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let solution = FullRateGreedy.solve(&mut ctx, &flows, &power).unwrap();
        for (flow, fs) in flows
            .iter()
            .zip(solution.schedule.as_ref().unwrap().flow_schedules())
        {
            assert!((fs.delivered_volume() - flow.volume).abs() < 1e-6);
            assert!(fs.profile.max_rate() <= power.capacity() + 1e-9);
        }
    }

    #[test]
    fn empty_flow_set_is_rejected_uniformly() {
        let topo = builders::line(3);
        let flows = FlowSet::from_flows(vec![]).unwrap();
        let power = x2(10.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let registry = AlgorithmRegistry::with_defaults();
        for name in registry.names() {
            let err = registry
                .create(name)
                .unwrap()
                .solve(&mut ctx, &flows, &power)
                .unwrap_err();
            assert_eq!(err, SolveError::EmptyFlowSet, "{name}");
        }
    }

    use dcn_flow::FlowSet;
}
