//! Exact DCFSR by exhaustive path enumeration — for *tiny* instances only.
//!
//! DCFSR is strongly NP-hard (Theorem 2), but once every flow's path is
//! fixed the remaining problem is DCFS, which [`crate::dcfs`] solves
//! optimally. For instances with a handful of flows it is therefore
//! possible to compute the true optimum by enumerating candidate paths per
//! flow (the `k` shortest, which is exhaustive on the small gadget
//! topologies) and taking the best Most-Critical-First schedule over the
//! Cartesian product of assignments.
//!
//! The test suites and the hardness-gadget experiment use this to measure
//! the *empirical* approximation ratio of Random-Schedule against the real
//! optimum instead of only against the fractional lower bound.

use crate::dcfs::most_critical_first;
use crate::schedule::Schedule;
use dcn_flow::FlowSet;
use dcn_power::PowerFunction;
use dcn_topology::{k_shortest_paths_on, Network, Path};
use std::fmt;

/// Errors raised by [`exact_dcfsr`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExactError {
    /// The instance is too large for exhaustive enumeration.
    TooLarge {
        /// Number of path assignments that enumeration would need to visit.
        combinations: u128,
        /// The configured enumeration budget.
        budget: u128,
    },
    /// Some flow has no path between its endpoints.
    Unroutable {
        /// The flow in question.
        flow: dcn_flow::FlowId,
    },
    /// No path assignment admitted a feasible DCFS schedule.
    NoFeasibleAssignment,
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::TooLarge {
                combinations,
                budget,
            } => write!(
                f,
                "exhaustive search would visit {combinations} assignments (budget {budget})"
            ),
            ExactError::Unroutable { flow } => {
                write!(f, "flow {flow} has no path between its endpoints")
            }
            ExactError::NoFeasibleAssignment => {
                write!(f, "no path assignment admits a feasible schedule")
            }
        }
    }
}

impl std::error::Error for ExactError {}

/// The optimum found by exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// The optimal schedule.
    pub schedule: Schedule,
    /// Its energy under the instance's power function.
    pub energy: f64,
    /// The chosen path per flow (indexed by flow id).
    pub paths: Vec<Path>,
    /// How many path assignments were evaluated.
    pub assignments_tried: usize,
}

/// Computes the exact DCFSR optimum of a tiny instance by enumerating up to
/// `paths_per_flow` candidate paths per flow (Yen's k-shortest by hop
/// count) and solving DCFS for every assignment.
///
/// # Errors
///
/// * [`ExactError::TooLarge`] when `paths_per_flow^n` exceeds
///   `max_assignments`.
/// * [`ExactError::Unroutable`] when some flow has no path at all.
/// * [`ExactError::NoFeasibleAssignment`] when every assignment fails
///   (possible only under extreme contention).
#[deprecated(
    since = "0.2.0",
    note = "build a SolverContext and run the `exact` algorithm (ExactBrute) or exact_dcfsr_ctx"
)]
pub fn exact_dcfsr(
    network: &Network,
    flows: &FlowSet,
    power: &PowerFunction,
    paths_per_flow: usize,
    max_assignments: u128,
) -> Result<ExactOutcome, ExactError> {
    let mut ctx = crate::SolverContext::from_network(network)
        .expect("networks built through the public API validate");
    exact_dcfsr_ctx(&mut ctx, flows, power, paths_per_flow, max_assignments)
}

/// [`crate::ExactBrute`]'s engine room: exhaustive enumeration on a shared
/// [`crate::SolverContext`] (candidate paths reuse the context's CSR view
/// and shortest-path arenas).
///
/// # Errors
///
/// * [`ExactError::TooLarge`] when `paths_per_flow^n` exceeds
///   `max_assignments`.
/// * [`ExactError::Unroutable`] when some flow has no path at all.
/// * [`ExactError::NoFeasibleAssignment`] when every assignment fails
///   (possible only under extreme contention).
pub fn exact_dcfsr_ctx(
    ctx: &mut crate::SolverContext<'_>,
    flows: &FlowSet,
    power: &PowerFunction,
    paths_per_flow: usize,
    max_assignments: u128,
) -> Result<ExactOutcome, ExactError> {
    let paths_per_flow = paths_per_flow.max(1);
    let threads = ctx.parallelism().threads;
    let network = ctx.network();
    // Candidate paths per flow, over the context's CSR view and engine.
    let (graph, engine, _) = ctx.parts();
    let mut candidates: Vec<Vec<Path>> = Vec::with_capacity(flows.len());
    for flow in flows.iter() {
        let paths = k_shortest_paths_on(graph, engine, flow.src, flow.dst, paths_per_flow, |_| 1.0);
        if paths.is_empty() {
            return Err(ExactError::Unroutable { flow: flow.id });
        }
        candidates.push(paths);
    }
    let combinations: u128 = candidates.iter().map(|c| c.len() as u128).product();
    if combinations > max_assignments {
        return Err(ExactError::TooLarge {
            combinations,
            budget: max_assignments,
        });
    }

    if threads > 1 {
        if let Ok(total) = usize::try_from(combinations) {
            return exact_parallel(network, flows, power, &candidates, total, threads);
        }
    }

    let mut best: Option<ExactOutcome> = None;
    let mut assignment = vec![0usize; flows.len()];
    let mut tried = 0usize;
    loop {
        // Evaluate the current assignment.
        let paths: Vec<Path> = assignment
            .iter()
            .enumerate()
            .map(|(flow, &choice)| candidates[flow][choice].clone())
            .collect();
        tried += 1;
        if let Ok(schedule) = most_critical_first(network, flows, &paths, power) {
            let energy = schedule.energy(power).total();
            let better = best.as_ref().map(|b| energy < b.energy).unwrap_or(true);
            if better {
                best = Some(ExactOutcome {
                    schedule,
                    energy,
                    paths,
                    assignments_tried: tried,
                });
            }
        }
        // Advance the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == assignment.len() {
                // Overflow: enumeration complete.
                return match best {
                    Some(mut outcome) => {
                        outcome.assignments_tried = tried;
                        Ok(outcome)
                    }
                    None => Err(ExactError::NoFeasibleAssignment),
                };
            }
            assignment[pos] += 1;
            if assignment[pos] < candidates[pos].len() {
                break;
            }
            assignment[pos] = 0;
            pos += 1;
        }
    }
}

/// The `i`-th path assignment of the mixed-radix enumeration (digit 0 is
/// the least significant, matching the sequential counter's order).
fn assignment_paths(candidates: &[Vec<Path>], index: usize) -> Vec<Path> {
    let mut rest = index;
    candidates
        .iter()
        .map(|c| {
            let choice = rest % c.len();
            rest /= c.len();
            c[choice].clone()
        })
        .collect()
}

/// Assignment-parallel enumeration: every assignment's DCFS evaluation is
/// independent, so the energies fan out across pool workers; the winner is
/// then selected by a sequential scan in enumeration order with a strict
/// `<` (first-better-wins) — the same tie-breaking as the sequential loop —
/// and only the winning assignment's schedule is rebuilt.
fn exact_parallel(
    network: &Network,
    flows: &FlowSet,
    power: &PowerFunction,
    candidates: &[Vec<Path>],
    total: usize,
    threads: usize,
) -> Result<ExactOutcome, ExactError> {
    let energies: Vec<Option<f64>> = crate::pool::run_indexed(total, threads, |i| {
        let paths = assignment_paths(candidates, i);
        most_critical_first(network, flows, &paths, power)
            .ok()
            .map(|schedule| schedule.energy(power).total())
    });
    let mut best: Option<(usize, f64)> = None;
    for (i, energy) in energies.iter().enumerate() {
        let Some(energy) = energy else { continue };
        let better = best.map(|(_, e)| *energy < e).unwrap_or(true);
        if better {
            best = Some((i, *energy));
        }
    }
    let Some((winner, energy)) = best else {
        return Err(ExactError::NoFeasibleAssignment);
    };
    let paths = assignment_paths(candidates, winner);
    let schedule = most_critical_first(network, flows, &paths, power)
        .expect("the winning assignment was feasible during enumeration");
    Ok(ExactOutcome {
        schedule,
        energy,
        paths,
        assignments_tried: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcfsr::RandomScheduleConfig;
    use crate::Algorithm;
    use dcn_topology::builders;

    fn x2(capacity: f64) -> PowerFunction {
        PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
    }

    /// One-shot enumeration through a fresh context.
    fn exact(
        network: &Network,
        flows: &FlowSet,
        power: &PowerFunction,
        paths_per_flow: usize,
        max_assignments: u128,
    ) -> Result<ExactOutcome, ExactError> {
        let mut ctx = crate::SolverContext::from_network(network).unwrap();
        exact_dcfsr_ctx(&mut ctx, flows, power, paths_per_flow, max_assignments)
    }

    #[test]
    fn exact_spreads_flows_over_parallel_links() {
        // Three identical flows over three parallel links: the optimum uses
        // one link each at its density.
        let topo = builders::parallel(3, 100.0);
        let flows =
            FlowSet::from_tuples((0..3).map(|_| (topo.source(), topo.sink(), 0.0, 2.0, 4.0)))
                .unwrap();
        let power = x2(100.0);
        let outcome = exact(&topo.network, &flows, &power, 3, 1_000).unwrap();
        // Each flow at density 2 on its own link for 2 time units:
        // 3 * 2^2 * 2 = 24.
        assert!(
            (outcome.energy - 24.0).abs() < 1e-6,
            "energy {}",
            outcome.energy
        );
        let mut used: Vec<_> = outcome.paths.iter().map(|p| p.links()[0]).collect();
        used.sort();
        used.dedup();
        assert_eq!(used.len(), 3);
    }

    #[test]
    fn exact_is_a_lower_bound_for_random_schedule() {
        let topo = builders::parallel(3, 100.0);
        let flows = FlowSet::from_tuples([
            (topo.source(), topo.sink(), 0.0, 2.0, 6.0),
            (topo.source(), topo.sink(), 0.0, 2.0, 4.0),
            (topo.source(), topo.sink(), 1.0, 3.0, 5.0),
        ])
        .unwrap();
        let power = x2(100.0);
        let exact = exact(&topo.network, &flows, &power, 3, 10_000).unwrap();
        let mut ctx = crate::SolverContext::from_network(&topo.network).unwrap();
        let rs = crate::Dcfsr::new(RandomScheduleConfig {
            max_rounding_attempts: 20,
            ..Default::default()
        })
        .solve(&mut ctx, &flows, &power)
        .unwrap();
        let rs_energy = rs.total_energy().unwrap();
        assert!(
            rs_energy >= exact.energy - 1e-6,
            "RS ({rs_energy}) cannot beat the exact optimum ({})",
            exact.energy
        );
        // And the exact optimum itself respects the fractional lower bound.
        assert!(exact.energy >= rs.lower_bound.unwrap() - 1e-6);
    }

    #[test]
    fn budget_is_enforced() {
        let topo = builders::fat_tree(4);
        let flows = FlowSet::from_tuples(
            (0..10).map(|i| (topo.hosts()[i], topo.hosts()[15 - i], 0.0, 10.0, 5.0)),
        )
        .unwrap();
        let err = exact(&topo.network, &flows, &x2(1e9), 4, 1_000).unwrap_err();
        assert!(matches!(err, ExactError::TooLarge { .. }));
    }

    #[test]
    fn unroutable_flow_is_reported() {
        let mut net = dcn_topology::Network::new();
        let a = net.add_node(dcn_topology::NodeKind::Host, "a");
        let b = net.add_node(dcn_topology::NodeKind::Host, "b");
        let flows = FlowSet::from_tuples([(a, b, 0.0, 1.0, 1.0)]).unwrap();
        let err = exact(&net, &flows, &x2(10.0), 2, 100).unwrap_err();
        assert_eq!(err, ExactError::Unroutable { flow: 0 });
    }

    #[test]
    fn single_flow_exact_equals_sp_mcf() {
        let topo = builders::line_with_capacity(4, 1e9);
        let flows =
            FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[3], 0.0, 5.0, 10.0)]).unwrap();
        let power = x2(1e9);
        let exact = exact(&topo.network, &flows, &power, 2, 100).unwrap();
        let mut ctx = crate::SolverContext::from_network(&topo.network).unwrap();
        let sp = crate::RoutedMcf::shortest_path()
            .solve(&mut ctx, &flows, &power)
            .unwrap();
        assert!((exact.energy - sp.total_energy().unwrap()).abs() < 1e-9);
    }
}
