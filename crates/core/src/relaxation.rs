//! The per-interval fractional relaxation of DCFSR and the lower bound it
//! yields.
//!
//! Random-Schedule (paper Section V-A) relaxes DCFSR in three ways: flows
//! are served exactly at their densities, flows may split over multiple
//! paths, and links can be switched on and off freely at any moment. Under
//! this relaxation the horizon decomposes into the intervals `I_k` between
//! consecutive release times / deadlines, and the traffic inside each
//! interval is constant — so each interval is an independent fractional
//! multi-commodity flow (F-MCF) problem with convex link costs, solved here
//! with the Frank–Wolfe solver of [`dcn_solver::fmcf`].
//!
//! The total relaxation cost `sum_k |I_k| * cost_k` is the lower bound
//! ("LB") that the paper's Fig. 2 uses to normalise every algorithm's
//! energy.

use dcn_flow::{FlowId, FlowSet, Interval};
use dcn_power::PowerFunction;
use dcn_solver::fmcf::{
    Commodity, FmcfProblem, FmcfScratch, FmcfSolution, FmcfSolverConfig, PowerFlowCost,
};
use dcn_topology::{GraphCsr, Network};

/// A [`FlowId`] that marks "not active in this interval" in the prebuilt
/// commodity lookup of [`IntervalRelaxation`].
const NOT_ACTIVE: u32 = u32::MAX;

/// The fractional solution of one interval's F-MCF subproblem.
///
/// Build one with [`IntervalRelaxation::new`]; the constructor prebuilds
/// the `FlowId -> commodity` lookup that makes
/// [`IntervalRelaxation::commodity_index`] O(1) on the DCFSR hot path.
#[derive(Debug, Clone)]
pub struct IntervalRelaxation {
    /// The interval `I_k`.
    pub interval: Interval,
    /// Flows active throughout the interval, in commodity order (the `c`-th
    /// commodity of [`Self::solution`] belongs to `flow_ids[c]`).
    pub flow_ids: Vec<FlowId>,
    /// The fractional multi-commodity flow solution for the interval.
    pub solution: FmcfSolution,
    /// The relaxation cost of the interval **per unit of time**.
    pub cost_rate: f64,
    /// Dense `FlowId -> commodity index` lookup ([`NOT_ACTIVE`] marks flows
    /// outside the interval). Flow ids are dense per-instance indices, so a
    /// flat vector beats a hash map here.
    commodity_of: Vec<u32>,
}

impl IntervalRelaxation {
    /// Assembles one interval's relaxation, prebuilding the
    /// `FlowId -> commodity` lookup from `flow_ids`.
    pub fn new(
        interval: Interval,
        flow_ids: Vec<FlowId>,
        solution: FmcfSolution,
        cost_rate: f64,
    ) -> Self {
        let size = flow_ids.iter().map(|&f| f + 1).max().unwrap_or(0);
        let mut commodity_of = vec![NOT_ACTIVE; size];
        for (c, &f) in flow_ids.iter().enumerate() {
            commodity_of[f] = u32::try_from(c).expect("commodity counts fit in u32");
        }
        Self {
            interval,
            flow_ids,
            solution,
            cost_rate,
            commodity_of,
        }
    }

    /// The relaxation cost contributed by this interval
    /// (`cost_rate * |I_k|`).
    pub fn cost(&self) -> f64 {
        self.cost_rate * self.interval.length()
    }

    /// The commodity index of a flow inside this interval, if the flow is
    /// active here. O(1) through the lookup prebuilt at solve time.
    pub fn commodity_index(&self, flow: FlowId) -> Option<usize> {
        match self.commodity_of.get(flow) {
            Some(&c) if c != NOT_ACTIVE => Some(c as usize),
            _ => None,
        }
    }
}

/// The relaxation of a whole instance: one [`IntervalRelaxation`] per
/// interval plus the aggregate lower bound.
#[derive(Debug, Clone)]
pub struct RelaxationSummary {
    /// Per-interval solutions, in interval order.
    pub intervals: Vec<IntervalRelaxation>,
    /// The fractional lower bound on the energy of any feasible DCFSR
    /// schedule: `sum_k |I_k| * cost_k`.
    pub lower_bound: f64,
}

impl RelaxationSummary {
    /// The relaxation of the interval with the given index, or `None` when
    /// `index` is out of range (an instance with `n` release/deadline
    /// events has at most `2n - 1` intervals, and degenerate instances can
    /// have fewer — callers should not assume a particular count).
    pub fn interval(&self, index: usize) -> Option<&IntervalRelaxation> {
        self.intervals.get(index)
    }
}

/// Solves the per-interval F-MCF relaxation of a DCFSR instance.
///
/// The cost function is [`PowerFlowCost`]: the paper's speed-scaling cost
/// `mu * x^alpha`, plus a `sigma * x / C` term that lower-bounds the idle
/// energy share when the power function has `sigma > 0`. The solver is
/// configured with the link capacity so the relaxation respects
/// `x_e(t) <= C`.
///
/// # Panics
///
/// Panics if some active flow's destination is unreachable from its source
/// (propagated from the Frank–Wolfe solver). The replacement API validates
/// first and returns [`crate::SolveError::Unroutable`] instead.
#[deprecated(
    since = "0.2.0",
    note = "build a SolverContext and call `SolverContext::relax` (or run the `lb` algorithm)"
)]
pub fn interval_relaxation(
    network: &Network,
    flows: &FlowSet,
    power: &PowerFunction,
    fmcf_config: &FmcfSolverConfig,
) -> RelaxationSummary {
    interval_relaxation_on(&GraphCsr::from_network(network), flows, power, fmcf_config)
}

/// [`crate::SolverContext::relax`] on a prebuilt CSR view with a fresh
/// scratch; the interval loop still shares one [`FmcfScratch`] (and
/// therefore one shortest-path engine and one set of Frank–Wolfe buffers)
/// across every interval's solve.
///
/// # Panics
///
/// Panics if some active flow's destination is unreachable from its source
/// (propagated from the Frank–Wolfe solver); validate the flow set first
/// — [`crate::SolverContext::relax`] does.
pub fn interval_relaxation_on(
    graph: &GraphCsr,
    flows: &FlowSet,
    power: &PowerFunction,
    fmcf_config: &FmcfSolverConfig,
) -> RelaxationSummary {
    interval_relaxation_with(graph, flows, power, fmcf_config, &mut FmcfScratch::new())
}

/// [`interval_relaxation_on`] with a caller-provided scratch, so the
/// Frank–Wolfe buffers persist across *calls* as well as across intervals.
/// This is the primitive [`crate::SolverContext::relax`] builds on.
///
/// # Panics
///
/// Panics if some active flow's destination is unreachable from its source
/// (propagated from the Frank–Wolfe solver); validate the flow set first.
pub fn interval_relaxation_with(
    graph: &GraphCsr,
    flows: &FlowSet,
    power: &PowerFunction,
    fmcf_config: &FmcfSolverConfig,
    scratch: &mut FmcfScratch,
) -> RelaxationSummary {
    let cost = PowerFlowCost::new(*power);
    let config = effective_config(fmcf_config, power);
    let intervals: Vec<IntervalRelaxation> = flows
        .intervals()
        .into_iter()
        .map(|interval| solve_interval(graph, flows, &cost, &config, interval, scratch))
        .collect();
    summarize(intervals)
}

/// [`interval_relaxation_with`] fanned out across intervals on the
/// index-ordered worker pool of [`crate::pool`]: each of the `threads`
/// workers builds one private [`FmcfScratch`] and reuses it across every
/// interval it drains.
///
/// **Determinism.** The result is byte-identical to the sequential path at
/// any thread count: each interval is an independent F-MCF problem, a cold
/// (non-warm-started) scratch solve is history-independent (pinned by the
/// solver's own equivalence tests), the per-interval solutions are
/// collected in interval order, and the lower bound is summed in
/// interval-index order so the floating-point addition sequence is fixed.
/// Callers that enable warm starts on a shared scratch must use the
/// sequential path instead — the warm cache is order-dependent by design
/// ([`crate::SolverContext::relax`] makes that choice automatically).
///
/// With `threads <= 1`, or when already running inside a pool worker (e.g.
/// nested under the benchmark harness's instance sharding), the solve runs
/// inline and is the sequential path.
///
/// # Panics
///
/// Panics if some active flow's destination is unreachable from its source
/// (propagated from the Frank–Wolfe solver); validate the flow set first.
pub fn interval_relaxation_threads(
    graph: &GraphCsr,
    flows: &FlowSet,
    power: &PowerFunction,
    fmcf_config: &FmcfSolverConfig,
    threads: usize,
) -> RelaxationSummary {
    let cost = PowerFlowCost::new(*power);
    let config = effective_config(fmcf_config, power);
    let spans = flows.intervals();
    let intervals =
        crate::pool::run_indexed_with(spans.len(), threads, FmcfScratch::new, |scratch, k| {
            solve_interval(graph, flows, &cost, &config, spans[k], scratch)
        });
    summarize(intervals)
}

/// The solver configuration with the link capacity defaulted from the
/// power function, as every relaxation entry point applies it.
fn effective_config(fmcf_config: &FmcfSolverConfig, power: &PowerFunction) -> FmcfSolverConfig {
    let mut config = *fmcf_config;
    if config.capacity.is_none() {
        config.capacity = Some(power.capacity());
    }
    config
}

/// Solves one interval's independent F-MCF subproblem on the given scratch.
fn solve_interval(
    graph: &GraphCsr,
    flows: &FlowSet,
    cost: &PowerFlowCost,
    config: &FmcfSolverConfig,
    interval: Interval,
    scratch: &mut FmcfScratch,
) -> IntervalRelaxation {
    let flow_ids = flows.active_in_interval(&interval);
    let commodities: Vec<Commodity> = flow_ids
        .iter()
        .map(|&id| {
            let f = flows.flow(id);
            Commodity {
                id,
                src: f.src,
                dst: f.dst,
                demand: f.density(),
            }
        })
        .collect();
    let problem = FmcfProblem::with_graph(graph, commodities);
    let solution = problem.solve_with(cost, config, scratch);
    let cost_rate = solution.total_cost(cost);
    IntervalRelaxation::new(interval, flow_ids, solution, cost_rate)
}

/// Folds per-interval solutions into a summary, summing the lower bound in
/// interval-index order (a fixed floating-point sequence, so the bound is
/// identical however the solves were scheduled).
fn summarize(intervals: Vec<IntervalRelaxation>) -> RelaxationSummary {
    let lower_bound = intervals.iter().map(IntervalRelaxation::cost).sum();
    RelaxationSummary {
        intervals,
        lower_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_flow::workload::UniformWorkload;
    use dcn_topology::builders;

    fn x2(capacity: f64) -> PowerFunction {
        PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
    }

    /// The one-shot call path of the pre-context API, expressed through
    /// the non-deprecated `_on` primitive.
    fn relax_network(
        network: &Network,
        flows: &FlowSet,
        power: &PowerFunction,
        config: &FmcfSolverConfig,
    ) -> RelaxationSummary {
        interval_relaxation_on(&GraphCsr::from_network(network), flows, power, config)
    }

    #[test]
    fn single_flow_lower_bound_is_its_density_cost_times_span() {
        // One flow on a line: the relaxation must route its density over the
        // shortest path in every interval of its span.
        let topo = builders::line_with_capacity(3, 100.0);
        let flows =
            dcn_flow::FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[2], 0.0, 4.0, 8.0)])
                .unwrap();
        let power = x2(100.0);
        let summary = relax_network(&topo.network, &flows, &power, &FmcfSolverConfig::default());
        assert_eq!(summary.intervals.len(), 1);
        // Density 2 over 2 links for 4 time units: 2 * 2^2 * 4 = 32.
        assert!((summary.lower_bound - 32.0).abs() < 1e-3);
    }

    #[test]
    fn intervals_with_no_active_flows_cost_nothing() {
        let topo = builders::line_with_capacity(3, 100.0);
        // Two flows with a gap between their spans.
        let flows = dcn_flow::FlowSet::from_tuples([
            (topo.hosts()[0], topo.hosts()[1], 0.0, 2.0, 2.0),
            (topo.hosts()[1], topo.hosts()[2], 6.0, 8.0, 2.0),
        ])
        .unwrap();
        let summary = relax_network(
            &topo.network,
            &flows,
            &x2(100.0),
            &FmcfSolverConfig::default(),
        );
        assert_eq!(summary.intervals.len(), 3);
        assert_eq!(summary.intervals[1].flow_ids.len(), 0);
        assert_eq!(summary.intervals[1].cost_rate, 0.0);
        assert!(summary.lower_bound > 0.0);
    }

    #[test]
    fn relaxation_on_prebuilt_graph_matches_one_shot() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = UniformWorkload::paper_defaults(12, 5)
            .generate(topo.hosts())
            .unwrap();
        let one_shot = relax_network(&topo.network, &flows, &power, &FmcfSolverConfig::default());
        let shared = super::interval_relaxation_on(
            &topo.csr(),
            &flows,
            &power,
            &FmcfSolverConfig::default(),
        );
        assert_eq!(one_shot.lower_bound, shared.lower_bound);
        assert_eq!(one_shot.intervals.len(), shared.intervals.len());
        for (a, b) in one_shot.intervals.iter().zip(&shared.intervals) {
            assert_eq!(a.flow_ids, b.flow_ids);
            assert_eq!(a.solution, b.solution);
            assert_eq!(a.cost_rate, b.cost_rate);
        }
    }

    #[test]
    fn commodity_index_maps_flows() {
        let topo = builders::line_with_capacity(4, 100.0);
        let flows = dcn_flow::FlowSet::from_tuples([
            (topo.hosts()[0], topo.hosts()[3], 0.0, 4.0, 4.0),
            (topo.hosts()[1], topo.hosts()[2], 0.0, 4.0, 4.0),
        ])
        .unwrap();
        let summary = relax_network(
            &topo.network,
            &flows,
            &x2(100.0),
            &FmcfSolverConfig::default(),
        );
        let iv = &summary.intervals[0];
        assert_eq!(iv.commodity_index(0), Some(0));
        assert_eq!(iv.commodity_index(1), Some(1));
        assert_eq!(iv.commodity_index(7), None);
    }

    #[test]
    fn interval_accessor_is_checked() {
        let topo = builders::line_with_capacity(3, 100.0);
        let flows =
            dcn_flow::FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[2], 0.0, 4.0, 4.0)])
                .unwrap();
        let summary = relax_network(
            &topo.network,
            &flows,
            &x2(100.0),
            &FmcfSolverConfig::default(),
        );
        assert_eq!(summary.intervals.len(), 1);
        assert!(summary.interval(0).is_some());
        assert!(summary.interval(1).is_none());
        assert!(summary.interval(usize::MAX).is_none());
    }

    #[test]
    fn lower_bound_grows_with_the_number_of_flows() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let small = UniformWorkload::paper_defaults(10, 3)
            .generate(topo.hosts())
            .unwrap();
        let large = UniformWorkload::paper_defaults(40, 3)
            .generate(topo.hosts())
            .unwrap();
        let lb_small =
            relax_network(&topo.network, &small, &power, &FmcfSolverConfig::default()).lower_bound;
        let lb_large =
            relax_network(&topo.network, &large, &power, &FmcfSolverConfig::default()).lower_bound;
        assert!(lb_small > 0.0);
        assert!(lb_large > lb_small);
    }

    #[test]
    fn idle_power_increases_the_lower_bound() {
        let topo = builders::line_with_capacity(3, 10.0);
        let flows =
            dcn_flow::FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[2], 0.0, 4.0, 8.0)])
                .unwrap();
        let no_idle = x2(10.0);
        let with_idle = PowerFunction::new(5.0, 1.0, 2.0, 10.0).unwrap();
        let lb0 = relax_network(
            &topo.network,
            &flows,
            &no_idle,
            &FmcfSolverConfig::default(),
        )
        .lower_bound;
        let lb1 = relax_network(
            &topo.network,
            &flows,
            &with_idle,
            &FmcfSolverConfig::default(),
        )
        .lower_bound;
        assert!(lb1 > lb0);
    }
}
