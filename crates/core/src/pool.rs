//! The deterministic scoped worker pool shared by the offline solvers and
//! the benchmark harness.
//!
//! Every parallel workload in this repository has the same shape: `count`
//! independent jobs indexed `0..count`, each a pure function of its index,
//! whose results must come back **in index order** so downstream output —
//! schedules, lower bounds, JSON artifacts — is independent of the thread
//! count. [`run_indexed`] implements exactly that contract on a
//! [`std::thread::scope`] pool with an atomic work cursor: the execution
//! schedule is dynamic, the result vector is not.
//!
//! [`run_indexed_with`] extends the contract with **per-worker state**: each
//! worker thread builds one state value (a Frank–Wolfe scratch, say) and
//! reuses it across every job it drains, which is what makes the
//! interval-parallel relaxation of [`crate::relaxation`] allocation-frugal
//! without sharing buffers across threads.
//!
//! # Nesting
//!
//! Pools compose without oversubscription: a `run_indexed` call issued from
//! *inside* a pool worker (e.g. an interval-parallel solve nested under the
//! benchmark harness's instance-parallel sweep) detects the nesting through
//! a thread-local flag and runs its jobs inline on the calling worker.
//! Because results are collected in index order either way, nesting can
//! never change a result — only where the parallelism is spent.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Set while the current thread is a pool worker; nested pool calls
    /// check it and run inline instead of spawning a second pool layer.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Returns `true` when called from inside a pool worker thread (any nested
/// [`run_indexed`] would therefore run inline).
pub fn in_pool_worker() -> bool {
    IN_POOL_WORKER.with(Cell::get)
}

/// The number of worker threads to use by default: every available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The parallelism knob of the offline solvers (see
/// [`crate::SolverContext::set_parallelism`]).
///
/// The default — one thread — is today's sequential behaviour bit for bit;
/// any other width keeps results byte-identical because every consumer of
/// the pool collects in index order and reduces in a fixed sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for interval-parallel solves. `1` runs inline.
    pub threads: usize,
}

impl ParallelConfig {
    /// Sequential execution (the default).
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// A pool of `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Runs `job(i)` for every `i in 0..count` on a pool of `threads` scoped
/// worker threads and returns the results **in index order**.
///
/// Work is distributed dynamically (an atomic cursor), so long and short
/// jobs mix freely across workers; because every job is a pure function of
/// its index, the returned vector — unlike the execution schedule — is
/// deterministic. With `threads <= 1`, or when called from inside another
/// pool's worker (see the [module docs](self)), the jobs run inline on the
/// calling thread.
///
/// # Panics
///
/// Propagates a panic from any job (the scope joins every worker).
pub fn run_indexed<T, F>(count: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(count, threads, || (), |(), i| job(i))
}

/// [`run_indexed`] with per-worker state: every worker thread calls `init`
/// once and passes the resulting value to each job it drains, so expensive
/// scratch (solver arenas, RNGs, buffers) is built once per worker instead
/// of once per job — and never shared across threads.
///
/// The inline path (`threads <= 1`, empty input, or nested under another
/// pool worker) builds a single state and runs every job on it, which is
/// exactly the sequential loop the parallel path must reproduce.
///
/// # Panics
///
/// Propagates a panic from any job (the scope joins every worker).
pub fn run_indexed_with<S, T, I, F>(count: usize, threads: usize, init: I, job: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = if in_pool_worker() {
        1
    } else {
        threads.clamp(1, count.max(1))
    };
    if threads <= 1 {
        let mut state = init();
        return (0..count).map(|i| job(&mut state, i)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                IN_POOL_WORKER.with(|flag| flag.set(true));
                let mut state = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = job(&mut state, i);
                    *slots[i].lock().expect("result slot is never poisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot is never poisoned")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_input_order() {
        let serial = run_indexed(17, 1, |i| i * i);
        for threads in [2, 3, 8, 64] {
            assert_eq!(run_indexed(17, threads, |i| i * i), serial);
        }
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn run_indexed_runs_every_job_exactly_once() {
        let counter = AtomicUsize::new(0);
        let results = run_indexed(100, 7, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(results, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn per_worker_state_is_reused_across_drained_jobs() {
        // Each worker's state counts the jobs it ran; the total across all
        // returned (state_counter_after_this_job) values must show states
        // being advanced, and the sum of final per-worker counts is 100.
        let results = run_indexed_with(
            100,
            4,
            || 0usize,
            |state, i| {
                *state += 1;
                (i, *state)
            },
        );
        assert_eq!(results.len(), 100);
        // Indices come back in order regardless of which worker ran them.
        for (slot, (i, count)) in results.iter().enumerate() {
            assert_eq!(slot, *i);
            assert!(*count >= 1 && *count <= 100);
        }
        // Sequentially, one state serves every job.
        let serial = run_indexed_with(
            5,
            1,
            || 0usize,
            |state, i| {
                *state += 1;
                (i, *state)
            },
        );
        assert_eq!(serial, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn nested_pools_run_inline_without_oversubscription() {
        // An outer pool of 4 workers each launching an "8-thread" inner
        // pool: the inner calls must detect the nesting and run inline,
        // and the combined result must match the fully sequential one.
        let outer = run_indexed(6, 4, |i| {
            assert!(in_pool_worker());
            let inner = run_indexed(5, 8, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let serial = run_indexed(6, 1, |i| {
            let inner = run_indexed(5, 8, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(outer, serial);
        // Back on the main thread the flag is clear.
        assert!(!in_pool_worker());
    }

    #[test]
    fn parallel_config_defaults_to_sequential() {
        assert_eq!(ParallelConfig::default(), ParallelConfig::sequential());
        assert_eq!(ParallelConfig::default().threads, 1);
        assert_eq!(ParallelConfig::with_threads(0).threads, 1);
        assert_eq!(ParallelConfig::with_threads(4).threads, 4);
    }
}
