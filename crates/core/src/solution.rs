//! The unified result type of the context-object API.
//!
//! Every [`crate::Algorithm`] returns one [`Solution`]: the schedule (when
//! the algorithm produces one — the fractional lower bound does not), the
//! energy under the instance's power function, the fractional lower bound
//! (when the algorithm computes it as a by-product) and a bag of
//! machine-readable [`Diagnostics`].

use crate::schedule::Schedule;
use dcn_power::EnergyBreakdown;
use dcn_topology::Path;

/// Per-run diagnostics of an [`crate::Algorithm`].
///
/// All fields are optional: every algorithm fills in what it measures and
/// leaves the rest `None`. Marked `#[non_exhaustive]` so future algorithms
/// can add fields without breaking downstream constructors — build values
/// with [`Diagnostics::default`] and set fields individually.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Diagnostics {
    /// Rounding draws performed by randomized rounding (`dcfsr`).
    pub rounding_attempts: Option<usize>,
    /// Largest factor by which any link exceeds its capacity in the chosen
    /// schedule (`0.0` when all capacities are respected).
    pub capacity_excess: Option<f64>,
    /// Path assignments evaluated by exhaustive enumeration (`exact`).
    pub assignments_tried: Option<usize>,
    /// Intervals `I_k` solved by the fractional relaxation.
    pub relaxation_intervals: Option<usize>,
}

/// The outcome of running one [`crate::Algorithm`] on one instance.
#[derive(Debug, Clone)]
pub struct Solution {
    algorithm: String,
    /// The produced schedule; `None` for bound-only algorithms (`lb`).
    pub schedule: Option<Schedule>,
    /// Energy of [`Solution::schedule`] under the instance's power
    /// function (the paper's objective, Eq. 5); `None` when there is no
    /// schedule.
    pub energy: Option<EnergyBreakdown>,
    /// The fractional lower bound of the instance, when the algorithm
    /// computed it (`dcfsr` and `lb` do; the DCFS-based baselines do not).
    pub lower_bound: Option<f64>,
    /// Algorithm-specific run statistics.
    pub diagnostics: Diagnostics,
}

impl Solution {
    /// Creates a solution for `algorithm` carrying `schedule` and its
    /// precomputed energy.
    pub fn scheduled(
        algorithm: impl Into<String>,
        schedule: Schedule,
        energy: EnergyBreakdown,
    ) -> Self {
        Self {
            algorithm: algorithm.into(),
            schedule: Some(schedule),
            energy: Some(energy),
            lower_bound: None,
            diagnostics: Diagnostics::default(),
        }
    }

    /// Creates a bound-only solution (no schedule), as produced by the
    /// `lb` algorithm.
    pub fn bound_only(algorithm: impl Into<String>, lower_bound: f64) -> Self {
        Self {
            algorithm: algorithm.into(),
            schedule: None,
            energy: None,
            lower_bound: Some(lower_bound),
            diagnostics: Diagnostics::default(),
        }
    }

    /// The name of the algorithm that produced this solution (matches
    /// [`crate::Algorithm::name`]).
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Total energy of the schedule (idle + dynamic), if there is one.
    pub fn total_energy(&self) -> Option<f64> {
        self.energy.map(|e| e.total())
    }

    /// The routing the schedule chose: one path per scheduled flow, in
    /// schedule order. `None` for bound-only solutions.
    pub fn paths(&self) -> Option<Vec<&Path>> {
        self.schedule
            .as_ref()
            .map(|s| s.flow_schedules().iter().map(|fs| &fs.path).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_only_solutions_have_no_schedule() {
        let s = Solution::bound_only("lb", 42.0);
        assert_eq!(s.algorithm(), "lb");
        assert_eq!(s.lower_bound, Some(42.0));
        assert!(s.schedule.is_none());
        assert!(s.energy.is_none());
        assert!(s.total_energy().is_none());
        assert!(s.paths().is_none());
        assert_eq!(s.diagnostics, Diagnostics::default());
    }

    #[test]
    fn scheduled_solutions_expose_energy_and_paths() {
        let schedule = Schedule::new(Vec::new(), (0.0, 1.0));
        let energy = EnergyBreakdown {
            idle: 1.0,
            dynamic: 2.0,
            active_links: 3,
        };
        let s = Solution::scheduled("sp-mcf", schedule, energy);
        assert_eq!(s.algorithm(), "sp-mcf");
        assert_eq!(s.total_energy(), Some(3.0));
        assert_eq!(s.paths().unwrap().len(), 0);
        assert!(s.lower_bound.is_none());
    }
}
