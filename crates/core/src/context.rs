//! The per-network solver session: one [`SolverContext`] owns every piece
//! of warm, reusable solver state.
//!
//! Before this type existed, warm-state reuse was only available to callers
//! who hand-threaded the `*_on` variants (`GraphCsr`, `ShortestPathEngine`
//! and `FmcfScratch`) through every call. A `SolverContext` is built **once**
//! per network and handed to every [`crate::Algorithm::solve`] call, so the
//! CSR view is built once, the shortest-path arenas and the Frank–Wolfe
//! buffers warm up once, and every algorithm — including one-off callers —
//! gets the allocation-free hot path by default.
//!
//! ```
//! use dcn_core::{Algorithm, Dcfsr, SolverContext};
//! use dcn_flow::workload::UniformWorkload;
//! use dcn_power::PowerFunction;
//! use dcn_topology::builders;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = builders::fat_tree(4);
//! let flows = UniformWorkload::paper_defaults(20, 42).generate(topo.hosts())?;
//! let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
//!
//! let mut ctx = SolverContext::from_network(&topo.network)?;
//! let solution = Dcfsr::default().solve(&mut ctx, &flows, &power)?;
//! ctx.verify(solution.schedule.as_ref().unwrap(), &flows, &power)?;
//! assert!(solution.total_energy().unwrap() >= solution.lower_bound.unwrap() - 1e-6);
//! # Ok(())
//! # }
//! ```

use crate::error::SolveError;
use crate::pool::ParallelConfig;
use crate::relaxation::{interval_relaxation_threads, interval_relaxation_with, RelaxationSummary};
use crate::routing::Routing;
use crate::schedule::Schedule;
use dcn_flow::FlowSet;
use dcn_power::PowerFunction;
use dcn_solver::fmcf::{FmcfScratch, FmcfSolverConfig};
use dcn_topology::{GraphCsr, Network, Path, ShortestPathEngine};

/// Warm solver state for one network: the CSR read view, the arena-reuse
/// shortest-path engine and the Frank–Wolfe scratch buffers.
///
/// Build one with [`SolverContext::from_network`] (which validates the
/// topology once) and pass it to every [`crate::Algorithm::solve`] call on
/// that network. The context borrows the [`Network`] immutably for its
/// whole lifetime, so the topology cannot drift out from under the CSR
/// view.
#[derive(Debug)]
pub struct SolverContext<'net> {
    network: &'net Network,
    graph: GraphCsr,
    engine: ShortestPathEngine,
    fmcf: FmcfScratch,
    parallel: ParallelConfig,
}

impl<'net> SolverContext<'net> {
    /// Builds a context from a network, validating the topology once:
    /// every link must have a positive, finite capacity and endpoints
    /// inside the node range. (Per-flow validation — endpoints in range,
    /// reachability — happens at solve time via
    /// [`SolverContext::validate_flows`], because the flow set is not known
    /// yet.)
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidInput`] describing the first violated
    /// invariant.
    pub fn from_network(network: &'net Network) -> Result<Self, SolveError> {
        let n = network.node_count();
        for link in network.links() {
            if link.src.index() >= n || link.dst.index() >= n {
                return Err(SolveError::InvalidInput {
                    reason: format!("link {} has endpoint outside the {n}-node range", link.id),
                });
            }
            if !link.capacity.is_finite() || link.capacity <= 0.0 {
                return Err(SolveError::InvalidInput {
                    reason: format!(
                        "link {} has non-positive capacity {}",
                        link.id, link.capacity
                    ),
                });
            }
        }
        Ok(Self {
            network,
            graph: GraphCsr::from_network(network),
            engine: ShortestPathEngine::new(),
            fmcf: FmcfScratch::new(),
            parallel: ParallelConfig::default(),
        })
    }

    /// Builder-style [`SolverContext::set_parallelism`].
    #[must_use]
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> Self {
        self.set_parallelism(parallel);
        self
    }

    /// Sets the interval-parallelism knob: solves whose subproblems are
    /// independent (the per-interval relaxation, DCFSR's per-interval path
    /// decomposition, `exact`'s assignment enumeration) fan out across
    /// `parallel.threads` pool workers. The default — one thread — is the
    /// sequential behaviour bit for bit, and any other width produces
    /// byte-identical results (see [`crate::pool`] and
    /// [`interval_relaxation_threads`]); the knob only changes wall-clock.
    ///
    /// Warm-started relaxations ([`SolverContext::set_warm_start`]) always
    /// run sequentially regardless of this knob: the warm cache on the
    /// shared scratch is order-dependent by design.
    pub fn set_parallelism(&mut self, parallel: ParallelConfig) {
        self.parallel = ParallelConfig::with_threads(parallel.threads);
    }

    /// The interval-parallelism knob in effect.
    pub fn parallelism(&self) -> ParallelConfig {
        self.parallel
    }

    /// The network the context was built from.
    pub fn network(&self) -> &'net Network {
        self.network
    }

    /// The flat CSR view of the network (built once at construction,
    /// mutated in place by [`SolverContext::apply_topology_event`]).
    pub fn graph(&self) -> &GraphCsr {
        &self.graph
    }

    /// Applies one link failure/recovery event to the context's CSR view
    /// in place. Returns `true` when the link state actually changed; a
    /// change bumps the graph's [`GraphCsr::epoch`] (invalidating every
    /// epoch-keyed cache downstream) and marks the link dirty for
    /// warm-started re-solves, so commodities routed across it are
    /// re-routed rather than served from the stale warm matrix.
    ///
    /// The borrowed [`Network`] is never touched: the event stream is a
    /// property of a run, not of the topology, and
    /// [`SolverContext::restore_all_links`] rolls the view back to the
    /// pristine built state.
    pub fn apply_topology_event(&mut self, event: dcn_topology::TopologyEvent) -> bool {
        let changed = event.apply(&mut self.graph);
        if changed {
            self.fmcf.mark_dirty_links([event.link()]);
        }
        changed
    }

    /// Brings every failed link back up (exact pre-failure capacities),
    /// returning how many links were restored. Used by harnesses that run
    /// an offline reference on the same context after a failure-injected
    /// online run.
    pub fn restore_all_links(&mut self) -> usize {
        let down: Vec<dcn_topology::LinkId> = self.graph.down_links().collect();
        for &link in &down {
            self.graph.restore_link(link);
        }
        self.fmcf.mark_dirty_links(down.iter().copied());
        down.len()
    }

    /// Splits the context into its reusable parts — the CSR view, the
    /// shortest-path engine and the Frank–Wolfe scratch — for algorithms
    /// that drive the low-level `*_on` APIs directly.
    pub fn parts(&mut self) -> (&GraphCsr, &mut ShortestPathEngine, &mut FmcfScratch) {
        (&self.graph, &mut self.engine, &mut self.fmcf)
    }

    /// Enables or disables warm-started Frank–Wolfe solves on the context's
    /// scratch (see [`FmcfScratch::set_warm_start`]): every relaxation run
    /// through [`SolverContext::relax`] then caches its last converged
    /// solution and seeds re-solves from it. Off by default — the cold path
    /// is bit-for-bit identical to a fresh scratch.
    pub fn set_warm_start(&mut self, enabled: bool) {
        self.fmcf.set_warm_start(enabled);
    }

    /// Whether warm-started Frank–Wolfe solves are enabled.
    pub fn warm_start(&self) -> bool {
        self.fmcf.warm_start()
    }

    /// Marks links whose residual conditions changed since the last solve,
    /// so a warm-started re-solve re-routes the commodities crossing them
    /// (delegates to [`FmcfScratch::mark_dirty_links`]).
    pub fn mark_dirty_links(&mut self, links: impl IntoIterator<Item = dcn_topology::LinkId>) {
        self.fmcf.mark_dirty_links(links);
    }

    /// Validates a flow set against this network: the set must be
    /// non-empty, every endpoint must be a node of the network, and every
    /// destination must be reachable from its source. (Source ≠ destination
    /// and positive finite volumes/spans are already structural invariants
    /// of [`dcn_flow::Flow`].)
    ///
    /// Reachability is checked with one multi-target Dijkstra per distinct
    /// source through the shared engine, so repeated validation of similar
    /// workloads stays allocation-free.
    ///
    /// # Errors
    ///
    /// * [`SolveError::EmptyFlowSet`] for an empty set.
    /// * [`SolveError::InvalidInput`] for an endpoint outside the node
    ///   range.
    /// * [`SolveError::Unroutable`] for a disconnected commodity.
    pub fn validate_flows(&mut self, flows: &FlowSet) -> Result<(), SolveError> {
        self.validate_flow_shape(flows)?;
        // One multi-target Dijkstra per distinct source (the same grouping
        // the Frank–Wolfe all-or-nothing step uses).
        let mut order: Vec<usize> = (0..flows.len()).collect();
        order.sort_unstable_by_key(|&i| (flows.flow(i).src.index(), i));
        let mut targets: Vec<dcn_topology::NodeId> = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let src = flows.flow(order[i]).src;
            let mut j = i;
            targets.clear();
            while j < order.len() && flows.flow(order[j]).src == src {
                targets.push(flows.flow(order[j]).dst);
                j += 1;
            }
            self.engine
                .single_source_all_targets(&self.graph, src, &targets, |_| 1.0);
            for &c in &order[i..j] {
                if !self.engine.settled(flows.flow(c).dst) {
                    return Err(SolveError::Unroutable {
                        flow: flows.flow(c).id,
                    });
                }
            }
            i = j;
        }
        Ok(())
    }

    /// The cheap half of [`SolverContext::validate_flows`]: non-empty set,
    /// endpoints inside the node range. Algorithms whose next step already
    /// detects disconnected commodities (every routing-based scheduler)
    /// use this instead of paying the reachability sweep twice; the
    /// relaxation path needs the full check because the Frank–Wolfe solver
    /// would panic on a disconnected commodity.
    ///
    /// # Errors
    ///
    /// * [`SolveError::EmptyFlowSet`] for an empty set.
    /// * [`SolveError::InvalidInput`] for an endpoint outside the node
    ///   range.
    pub fn validate_flow_shape(&self, flows: &FlowSet) -> Result<(), SolveError> {
        if flows.is_empty() {
            return Err(SolveError::EmptyFlowSet);
        }
        let n = self.graph.node_count();
        for f in flows.iter() {
            if f.src.index() >= n || f.dst.index() >= n {
                return Err(SolveError::InvalidInput {
                    reason: format!("flow {} has an endpoint outside the {n}-node range", f.id),
                });
            }
        }
        Ok(())
    }

    /// Computes one routing path per flow with the given strategy, on the
    /// context's CSR view.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Unroutable`] if some flow has no path.
    pub fn route(&mut self, strategy: &Routing, flows: &FlowSet) -> Result<Vec<Path>, SolveError> {
        strategy
            .compute_on(&self.graph, flows)
            .map_err(SolveError::from)
    }

    /// Solves the per-interval fractional relaxation of the instance. At
    /// the default parallelism the interval loop shares the context's
    /// Frank–Wolfe scratch (one shortest-path engine and one buffer set
    /// across every interval and every call); with
    /// [`SolverContext::set_parallelism`] above one thread — and warm
    /// starts off — the independent intervals fan out across pool workers
    /// with one private scratch each, returning byte-identical results
    /// (see [`interval_relaxation_threads`]).
    ///
    /// Validates the flow set first, so the underlying solver — which
    /// panics on disconnected commodities — is never reached with bad
    /// input.
    ///
    /// # Errors
    ///
    /// Propagates [`SolverContext::validate_flows`] errors.
    pub fn relax(
        &mut self,
        flows: &FlowSet,
        power: &PowerFunction,
        config: &FmcfSolverConfig,
    ) -> Result<RelaxationSummary, SolveError> {
        self.validate_flows(flows)?;
        // The warm cache lives on the shared scratch and is order-dependent
        // by design, so warm-started contexts keep the sequential path.
        if self.parallel.threads > 1 && !self.fmcf.warm_start() {
            return Ok(interval_relaxation_threads(
                &self.graph,
                flows,
                power,
                config,
                self.parallel.threads,
            ));
        }
        Ok(interval_relaxation_with(
            &self.graph,
            flows,
            power,
            config,
            &mut self.fmcf,
        ))
    }

    /// Verifies a schedule against its instance on the context's CSR view
    /// (full delivery, spans, endpoints, per-link volumes, capacities).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Verification`] wrapping every violation found.
    pub fn verify(
        &self,
        schedule: &Schedule,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<(), SolveError> {
        schedule
            .verify_on(&self.graph, flows, power)
            .map_err(SolveError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::builders;

    fn x2() -> PowerFunction {
        PowerFunction::speed_scaling_only(1.0, 2.0, 10.0)
    }

    #[test]
    fn context_builds_on_every_builder_topology() {
        for topo in [
            builders::fat_tree(4),
            builders::leaf_spine(4, 2, 4),
            builders::bcube(3, 1),
            builders::line(3),
            builders::parallel(4, 10.0),
        ] {
            let ctx = SolverContext::from_network(&topo.network).unwrap();
            assert_eq!(ctx.graph().link_count(), topo.network.link_count());
            assert!(std::ptr::eq(ctx.network(), &topo.network));
        }
    }

    #[test]
    fn empty_flow_set_is_a_typed_error() {
        let topo = builders::line(3);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let flows = dcn_flow::FlowSet::from_flows(vec![]).unwrap();
        assert_eq!(
            ctx.validate_flows(&flows).unwrap_err(),
            SolveError::EmptyFlowSet
        );
        assert_eq!(
            ctx.relax(&flows, &x2(), &Default::default()).unwrap_err(),
            SolveError::EmptyFlowSet
        );
    }

    #[test]
    fn out_of_range_endpoint_is_invalid_input() {
        let topo = builders::line(3);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let flows = dcn_flow::FlowSet::from_tuples([(
            dcn_topology::NodeId(99),
            topo.hosts()[0],
            0.0,
            1.0,
            1.0,
        )])
        .unwrap();
        assert!(matches!(
            ctx.validate_flows(&flows).unwrap_err(),
            SolveError::InvalidInput { .. }
        ));
    }

    #[test]
    fn disconnected_commodity_is_unroutable_not_a_panic() {
        let mut net = Network::new();
        let a = net.add_node(dcn_topology::NodeKind::Host, "a");
        let b = net.add_node(dcn_topology::NodeKind::Host, "b");
        let c = net.add_node(dcn_topology::NodeKind::Host, "c");
        net.add_duplex_link(a, b, 10.0);
        // c is disconnected.
        let flows =
            dcn_flow::FlowSet::from_tuples([(a, b, 0.0, 1.0, 1.0), (a, c, 0.0, 1.0, 1.0)]).unwrap();
        let mut ctx = SolverContext::from_network(&net).unwrap();
        assert_eq!(
            ctx.validate_flows(&flows).unwrap_err(),
            SolveError::Unroutable { flow: 1 }
        );
        // The relaxation surfaces the same typed error instead of the
        // Frank–Wolfe solver's panic.
        assert_eq!(
            ctx.relax(&flows, &x2(), &Default::default()).unwrap_err(),
            SolveError::Unroutable { flow: 1 }
        );
    }

    #[test]
    fn relax_matches_the_shared_scratch_relaxation_bit_for_bit() {
        let topo = builders::fat_tree(4);
        let flows = dcn_flow::workload::UniformWorkload::paper_defaults(12, 5)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let via_ctx = ctx.relax(&flows, &x2(), &Default::default()).unwrap();
        let direct = crate::relaxation::interval_relaxation_on(
            &topo.csr(),
            &flows,
            &x2(),
            &Default::default(),
        );
        assert_eq!(via_ctx.lower_bound, direct.lower_bound);
        assert_eq!(via_ctx.intervals.len(), direct.intervals.len());
        for (a, b) in via_ctx.intervals.iter().zip(&direct.intervals) {
            assert_eq!(a.solution, b.solution);
        }
    }

    #[test]
    fn verify_delegates_to_the_csr_view() {
        let topo = builders::line(3);
        let flows =
            dcn_flow::FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[2], 0.0, 4.0, 8.0)])
                .unwrap();
        let path = topo
            .network
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        let schedule = Schedule::new(
            vec![crate::schedule::FlowSchedule::uniform(
                0,
                path,
                dcn_power::RateProfile::constant(0.0, 4.0, 2.0),
            )],
            (0.0, 4.0),
        );
        let ctx = SolverContext::from_network(&topo.network).unwrap();
        ctx.verify(&schedule, &flows, &x2()).unwrap();
        // A broken schedule surfaces as the typed Verification variant.
        let broken = Schedule::new(vec![], (0.0, 4.0));
        assert!(matches!(
            ctx.verify(&broken, &flows, &x2()).unwrap_err(),
            SolveError::Verification(_)
        ));
    }
}
