//! Routing strategies used to fix the paths of a DCFS instance.
//!
//! DCFS assumes "the routing paths for all the flows are provided"; in
//! practice data centers obtain them from their routing protocol. This
//! module provides the strategies used in the paper's evaluation and the
//! extension experiments:
//!
//! * [`Routing::ShortestPath`] — minimum-hop routing, the `SP` part of the
//!   paper's `SP+MCF` baseline.
//! * [`Routing::Ecmp`] — ECMP-style routing: a uniformly random choice among
//!   all minimum-hop paths (seeded, deterministic).
//! * [`Routing::LeastLoadedKsp`] — a greedy load-aware heuristic that
//!   considers the `k` shortest paths of every flow (in volume order) and
//!   picks the one minimising the resulting maximum link volume; a stand-in
//!   for the consolidation-style traffic engineering the paper's related
//!   work discusses.

use dcn_flow::FlowSet;
use dcn_topology::{
    all_shortest_paths_on, k_shortest_paths_on, GraphCsr, Network, Path, ShortestPathEngine,
};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::fmt;

/// Errors raised while computing routes.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutingError {
    /// No path exists between a flow's endpoints.
    Unreachable {
        /// The flow that cannot be routed.
        flow: dcn_flow::FlowId,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::Unreachable { flow } => {
                write!(f, "flow {flow} has no path between its endpoints")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// A path-selection strategy: given the network and the flow set, produce
/// one routing path per flow (indexed by flow id).
#[derive(Debug, Clone, PartialEq)]
pub enum Routing {
    /// Minimum-hop shortest path (deterministic tie-break).
    ShortestPath,
    /// Uniformly random choice among all minimum-hop paths, seeded.
    Ecmp {
        /// RNG seed.
        seed: u64,
    },
    /// Greedy volume-aware choice among the `k` shortest paths of each flow.
    LeastLoadedKsp {
        /// Number of candidate shortest paths per flow.
        k: usize,
    },
}

impl Routing {
    /// Computes one path per flow, indexed by flow id.
    ///
    /// Builds a one-shot [`GraphCsr`] view on every call.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::Unreachable`] if some flow has no path.
    #[deprecated(
        since = "0.2.0",
        note = "build a SolverContext and call `SolverContext::route` (or `Routing::compute_on`)"
    )]
    pub fn compute(&self, network: &Network, flows: &FlowSet) -> Result<Vec<Path>, RoutingError> {
        self.compute_on(&GraphCsr::from_network(network), flows)
    }

    /// Computes one path per flow on a prebuilt CSR view, sharing one
    /// shortest-path engine across all per-flow queries.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::Unreachable`] if some flow has no path.
    pub fn compute_on(&self, graph: &GraphCsr, flows: &FlowSet) -> Result<Vec<Path>, RoutingError> {
        match self {
            Routing::ShortestPath => flows
                .iter()
                .map(|f| {
                    graph
                        .shortest_path(f.src, f.dst)
                        .ok_or(RoutingError::Unreachable { flow: f.id })
                })
                .collect(),
            Routing::Ecmp { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                flows
                    .iter()
                    .map(|f| {
                        let candidates = all_shortest_paths_on(graph, f.src, f.dst, 64);
                        candidates
                            .choose(&mut rng)
                            .cloned()
                            .ok_or(RoutingError::Unreachable { flow: f.id })
                    })
                    .collect()
            }
            Routing::LeastLoadedKsp { k } => {
                let k = (*k).max(1);
                // Process flows in decreasing volume order (largest first),
                // greedily balancing the per-link committed volume.
                let mut order: Vec<usize> = (0..flows.len()).collect();
                order.sort_by(|&a, &b| {
                    flows
                        .flow(b)
                        .volume
                        .partial_cmp(&flows.flow(a).volume)
                        .expect("finite volumes")
                });
                let mut engine = ShortestPathEngine::new();
                let mut link_volume = vec![0.0_f64; graph.link_count()];
                let mut paths: Vec<Option<Path>> = vec![None; flows.len()];
                for id in order {
                    let f = flows.flow(id);
                    let candidates =
                        k_shortest_paths_on(graph, &mut engine, f.src, f.dst, k, |_| 1.0);
                    if candidates.is_empty() {
                        return Err(RoutingError::Unreachable { flow: f.id });
                    }
                    let best = candidates
                        .into_iter()
                        .min_by(|a, b| {
                            let load_a = path_peak_volume(a, &link_volume, f.volume);
                            let load_b = path_peak_volume(b, &link_volume, f.volume);
                            load_a
                                .partial_cmp(&load_b)
                                .expect("finite volumes")
                                .then(a.len().cmp(&b.len()))
                        })
                        .expect("candidates is non-empty");
                    for &l in best.links() {
                        link_volume[l.index()] += f.volume;
                    }
                    paths[id] = Some(best);
                }
                Ok(paths
                    .into_iter()
                    .map(|p| p.expect("every flow routed"))
                    .collect())
            }
        }
    }
}

/// The maximum committed volume over the links of `path` if `volume` more
/// units were added to each of them.
fn path_peak_volume(path: &Path, link_volume: &[f64], volume: f64) -> f64 {
    path.links()
        .iter()
        .map(|&l| link_volume[l.index()] + volume)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_flow::workload::UniformWorkload;
    use dcn_topology::builders;

    #[test]
    fn shortest_path_routes_every_flow() {
        let topo = builders::fat_tree(4);
        let flows = UniformWorkload::paper_defaults(30, 5)
            .generate(topo.hosts())
            .unwrap();
        let paths = Routing::ShortestPath
            .compute_on(&topo.csr(), &flows)
            .unwrap();
        assert_eq!(paths.len(), flows.len());
        for (f, p) in flows.iter().zip(&paths) {
            assert_eq!(p.source(), f.src);
            assert_eq!(p.destination(), f.dst);
            assert!(p.len() <= 6, "fat-tree paths are at most 6 hops");
        }
    }

    #[test]
    fn ecmp_is_deterministic_per_seed_and_spreads_paths() {
        let topo = builders::fat_tree(4);
        let flows = UniformWorkload::paper_defaults(40, 11)
            .generate(topo.hosts())
            .unwrap();
        let graph = topo.csr();
        let a = Routing::Ecmp { seed: 1 }
            .compute_on(&graph, &flows)
            .unwrap();
        let b = Routing::Ecmp { seed: 1 }
            .compute_on(&graph, &flows)
            .unwrap();
        let c = Routing::Ecmp { seed: 2 }
            .compute_on(&graph, &flows)
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should give different ECMP draws");
        for (f, p) in flows.iter().zip(&a) {
            assert_eq!(p.source(), f.src);
            assert_eq!(p.destination(), f.dst);
        }
    }

    #[test]
    fn least_loaded_ksp_spreads_volume_on_parallel_links() {
        let topo = builders::parallel(4, 10.0);
        // Four identical flows between the two hosts: each should get its
        // own parallel link.
        let flows = dcn_flow::FlowSet::from_tuples(
            (0..4).map(|_| (topo.source(), topo.sink(), 0.0, 10.0, 5.0)),
        )
        .unwrap();
        let paths = Routing::LeastLoadedKsp { k: 4 }
            .compute_on(&topo.csr(), &flows)
            .unwrap();
        let mut used: Vec<_> = paths.iter().map(|p| p.links()[0]).collect();
        used.sort();
        used.dedup();
        assert_eq!(used.len(), 4, "each flow should use a distinct link");
    }

    #[test]
    fn compute_on_matches_compute_for_every_strategy() {
        let topo = builders::fat_tree(4);
        let graph = topo.csr();
        let flows = UniformWorkload::paper_defaults(25, 9)
            .generate(topo.hosts())
            .unwrap();
        for strategy in [
            Routing::ShortestPath,
            Routing::Ecmp { seed: 4 },
            Routing::LeastLoadedKsp { k: 4 },
        ] {
            #[allow(deprecated)] // pins the deprecated delegate against the blessed path
            let classic = strategy.compute(&topo.network, &flows).unwrap();
            let on = strategy.compute_on(&graph, &flows).unwrap();
            assert_eq!(classic, on, "{strategy:?} diverges on the CSR view");
        }
    }

    #[test]
    fn unreachable_flow_is_an_error() {
        // Two disconnected hosts.
        let mut net = dcn_topology::Network::new();
        let a = net.add_node(dcn_topology::NodeKind::Host, "a");
        let b = net.add_node(dcn_topology::NodeKind::Host, "b");
        let flows = dcn_flow::FlowSet::from_tuples([(a, b, 0.0, 1.0, 1.0)]).unwrap();
        for strategy in [
            Routing::ShortestPath,
            Routing::Ecmp { seed: 0 },
            Routing::LeastLoadedKsp { k: 2 },
        ] {
            let err = strategy
                .compute_on(&GraphCsr::from_network(&net), &flows)
                .unwrap_err();
            assert_eq!(err, RoutingError::Unreachable { flow: 0 });
        }
    }
}
