//! The schedule data model: per-flow routing paths and rate profiles,
//! feasibility verification and energy accounting.
//!
//! A flow's schedule records both its *nominal* transmission profile (the
//! rate at which data arrives at the destination, used for volume and
//! deadline checks) and one profile per link of its path. For
//! Random-Schedule and simple hand-built schedules all links share the same
//! profile ([`FlowSchedule::uniform`]); Most-Critical-First packs each link
//! independently (store-and-forward), so the windows may differ per link
//! while the rate and the total transmission time are the same everywhere.

use dcn_flow::{FlowId, FlowSet};
use dcn_power::{EnergyBreakdown, EnergyMeter, PowerFunction, RateProfile};
use dcn_topology::{GraphCsr, LinkId, Network, Path};
use std::collections::BTreeMap;
use std::fmt;

/// How a single flow is served: the path it follows and its transmission
/// rate over time, on every link of the path.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSchedule {
    /// The flow this schedule serves.
    pub flow: FlowId,
    /// The single routing path assigned to the flow.
    pub path: Path,
    /// The nominal transmission profile (arrival of data at the
    /// destination); used for volume and deadline verification.
    pub profile: RateProfile,
    /// The transmission profile of the flow on every link of its path.
    pub link_profiles: BTreeMap<LinkId, RateProfile>,
}

impl FlowSchedule {
    /// Creates a schedule in which the flow transmits with the same profile
    /// on every link of its path (cut-through / fluid semantics, as used by
    /// Random-Schedule).
    pub fn uniform(flow: FlowId, path: Path, profile: RateProfile) -> Self {
        let link_profiles = path.links().iter().map(|&l| (l, profile.clone())).collect();
        Self {
            flow,
            path,
            profile,
            link_profiles,
        }
    }

    /// Creates a schedule with explicit per-link profiles (store-and-forward
    /// semantics, as used by Most-Critical-First).
    pub fn per_link(
        flow: FlowId,
        path: Path,
        profile: RateProfile,
        link_profiles: BTreeMap<LinkId, RateProfile>,
    ) -> Self {
        Self {
            flow,
            path,
            profile,
            link_profiles,
        }
    }

    /// Total volume delivered to the destination by this schedule.
    pub fn delivered_volume(&self) -> f64 {
        self.profile.volume()
    }

    /// The profile of the flow on a particular link of its path, if any.
    pub fn link_profile(&self, link: LinkId) -> Option<&RateProfile> {
        self.link_profiles.get(&link)
    }

    /// The earliest and latest instants at which the flow transmits on any
    /// link, or `None` for an all-zero schedule.
    pub fn activity_span(&self) -> Option<(f64, f64)> {
        let mut span: Option<(f64, f64)> = self.profile.span();
        for p in self.link_profiles.values() {
            if let Some((s, e)) = p.span() {
                span = Some(match span {
                    None => (s, e),
                    Some((cs, ce)) => (cs.min(s), ce.max(e)),
                });
            }
        }
        span
    }
}

/// A violation detected when verifying a schedule against its instance.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleViolation {
    /// A flow has no schedule entry.
    MissingFlow(FlowId),
    /// A flow delivers less volume than required.
    VolumeShortfall {
        /// The flow in question.
        flow: FlowId,
        /// Volume delivered by the schedule.
        delivered: f64,
        /// Volume required by the flow.
        required: f64,
    },
    /// Some link of a flow's path carries less than the flow's volume.
    LinkVolumeShortfall {
        /// The flow in question.
        flow: FlowId,
        /// The link carrying too little.
        link: LinkId,
        /// Volume carried on that link.
        carried: f64,
    },
    /// A flow transmits outside its `[release, deadline]` span.
    OutsideSpan {
        /// The flow in question.
        flow: FlowId,
        /// First instant of transmission.
        start: f64,
        /// Last instant of transmission.
        end: f64,
    },
    /// A flow's path does not connect its source to its destination.
    WrongEndpoints {
        /// The flow in question.
        flow: FlowId,
    },
    /// A link's aggregate rate exceeds the capacity `C`.
    CapacityExceeded {
        /// The overloaded link.
        link: LinkId,
        /// The maximum aggregate rate observed on the link.
        max_rate: f64,
        /// The link capacity.
        capacity: f64,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::MissingFlow(id) => write!(f, "flow {id} has no schedule"),
            ScheduleViolation::VolumeShortfall {
                flow,
                delivered,
                required,
            } => write!(
                f,
                "flow {flow} delivers {delivered} of the required {required} units"
            ),
            ScheduleViolation::LinkVolumeShortfall {
                flow,
                link,
                carried,
            } => write!(
                f,
                "flow {flow} pushes only {carried} units through link {link}"
            ),
            ScheduleViolation::OutsideSpan { flow, start, end } => {
                write!(
                    f,
                    "flow {flow} transmits in [{start}, {end}] outside its span"
                )
            }
            ScheduleViolation::WrongEndpoints { flow } => {
                write!(f, "flow {flow} is routed on a path with wrong endpoints")
            }
            ScheduleViolation::CapacityExceeded {
                link,
                max_rate,
                capacity,
            } => write!(
                f,
                "link {link} reaches rate {max_rate}, above its capacity {capacity}"
            ),
        }
    }
}

/// The error returned by [`Schedule::verify`], wrapping every violation
/// found.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleError {
    /// All detected violations.
    pub violations: Vec<ScheduleViolation>,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule has {} violation(s): ", self.violations.len())?;
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ScheduleError {}

/// A complete schedule: one [`FlowSchedule`] per flow, plus the horizon over
/// which energy is accounted.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    flows: Vec<FlowSchedule>,
    horizon: (f64, f64),
}

impl Schedule {
    /// Creates a schedule from per-flow schedules and the accounting horizon
    /// `[T0, T1]`.
    ///
    /// # Panics
    ///
    /// Panics if the horizon is reversed.
    pub fn new(flows: Vec<FlowSchedule>, horizon: (f64, f64)) -> Self {
        assert!(horizon.1 >= horizon.0, "schedule horizon is reversed");
        Self { flows, horizon }
    }

    /// The accounting horizon `[T0, T1]`.
    pub fn horizon(&self) -> (f64, f64) {
        self.horizon
    }

    /// The per-flow schedules, in insertion order.
    pub fn flow_schedules(&self) -> &[FlowSchedule] {
        &self.flows
    }

    /// The schedule of a specific flow, if present.
    pub fn flow_schedule(&self, flow: FlowId) -> Option<&FlowSchedule> {
        self.flows.iter().find(|fs| fs.flow == flow)
    }

    /// Number of scheduled flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Returns `true` if the schedule contains no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The aggregate rate profile of every link that carries traffic.
    pub fn link_profiles(&self) -> BTreeMap<LinkId, RateProfile> {
        let mut profiles: BTreeMap<LinkId, RateProfile> = BTreeMap::new();
        for fs in &self.flows {
            for (&link, profile) in &fs.link_profiles {
                profiles.entry(link).or_default().merge(profile);
            }
        }
        profiles
    }

    /// The links that carry any traffic (the active set `E_a`).
    pub fn active_links(&self) -> Vec<LinkId> {
        self.link_profiles()
            .into_iter()
            .filter(|(_, p)| p.is_active())
            .map(|(l, _)| l)
            .collect()
    }

    /// Builds an [`EnergyMeter`] loaded with this schedule's link activity.
    pub fn energy_meter(&self, power: &PowerFunction) -> EnergyMeter {
        let mut meter = EnergyMeter::new(*power, self.horizon.0, self.horizon.1);
        for (link, profile) in self.link_profiles() {
            meter.add_profile(link, &profile);
        }
        meter
    }

    /// The energy of the schedule under the paper's objective (Eq. 5).
    pub fn energy(&self, power: &PowerFunction) -> EnergyBreakdown {
        self.energy_meter(power).breakdown()
    }

    /// The largest factor by which any link's aggregate rate exceeds the
    /// capacity (zero when none does).
    pub fn max_capacity_excess(&self, power: &PowerFunction) -> f64 {
        self.link_profiles()
            .values()
            .map(|p| p.capacity_excess(power.capacity()))
            .fold(0.0, f64::max)
    }

    /// Verifies the schedule against the instance it is supposed to solve:
    /// every flow must be fully delivered, inside its span, along a path
    /// from its source to its destination, every link of the path must carry
    /// the full volume, and no link may exceed its capacity.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] listing every violation found.
    #[deprecated(
        since = "0.2.0",
        note = "use `SolverContext::verify` (or `Schedule::verify_on` with a prebuilt CSR view)"
    )]
    pub fn verify(
        &self,
        network: &Network,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<(), ScheduleError> {
        self.verify_impl(|l| network.link(l).capacity, flows, power)
    }

    /// [`Schedule::verify`] against a prebuilt CSR view of the network
    /// (capacities are read from the flat per-link array).
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] listing every violation found.
    pub fn verify_on(
        &self,
        graph: &GraphCsr,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<(), ScheduleError> {
        self.verify_impl(|l| graph.capacity(l), flows, power)
    }

    fn verify_impl(
        &self,
        link_capacity: impl Fn(LinkId) -> f64,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<(), ScheduleError> {
        let mut violations = Vec::new();
        for flow in flows.iter() {
            let Some(fs) = self.flow_schedule(flow.id) else {
                violations.push(ScheduleViolation::MissingFlow(flow.id));
                continue;
            };
            // Volume delivered to the destination.
            let delivered = fs.delivered_volume();
            if delivered + 1e-6 * flow.volume.max(1.0) < flow.volume {
                violations.push(ScheduleViolation::VolumeShortfall {
                    flow: flow.id,
                    delivered,
                    required: flow.volume,
                });
            }
            // Every link of the path must carry the full volume.
            for &link in fs.path.links() {
                let carried = fs
                    .link_profile(link)
                    .map(RateProfile::volume)
                    .unwrap_or(0.0);
                if carried + 1e-6 * flow.volume.max(1.0) < flow.volume {
                    violations.push(ScheduleViolation::LinkVolumeShortfall {
                        flow: flow.id,
                        link,
                        carried,
                    });
                }
            }
            // All activity must stay inside the span.
            if let Some((start, end)) = fs.activity_span() {
                if start < flow.release - 1e-9 || end > flow.deadline + 1e-9 {
                    violations.push(ScheduleViolation::OutsideSpan {
                        flow: flow.id,
                        start,
                        end,
                    });
                }
            }
            // Path endpoints.
            if fs.path.source() != flow.src || fs.path.destination() != flow.dst {
                violations.push(ScheduleViolation::WrongEndpoints { flow: flow.id });
            }
        }
        // Link capacities.
        for (link, profile) in self.link_profiles() {
            let max_rate = profile.max_rate();
            let capacity = link_capacity(link).min(power.capacity());
            if max_rate > capacity * (1.0 + 1e-9) + 1e-9 {
                violations.push(ScheduleViolation::CapacityExceeded {
                    link,
                    max_rate,
                    capacity,
                });
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(ScheduleError { violations })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_flow::FlowSet;
    use dcn_topology::builders;

    fn power() -> PowerFunction {
        PowerFunction::new(1.0, 1.0, 2.0, 10.0).unwrap()
    }

    /// A line A-B-C with one flow A->C served at a constant rate.
    fn simple_instance() -> (dcn_topology::builders::BuiltTopology, FlowSet, Schedule) {
        let topo = builders::line(3);
        let flows =
            FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[2], 0.0, 4.0, 8.0)]).unwrap();
        let path = topo
            .network
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        let schedule = Schedule::new(
            vec![FlowSchedule::uniform(
                0,
                path,
                RateProfile::constant(0.0, 4.0, 2.0),
            )],
            (0.0, 4.0),
        );
        (topo, flows, schedule)
    }

    fn rebuild_with_profile(topo: &builders::BuiltTopology, profile: RateProfile) -> Schedule {
        let path = topo
            .network
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        Schedule::new(vec![FlowSchedule::uniform(0, path, profile)], (0.0, 4.0))
    }

    #[test]
    fn valid_schedule_verifies() {
        let (topo, flows, schedule) = simple_instance();
        // The deprecated one-shot delegate reports the same verdict as the
        // blessed CSR read path.
        #[allow(deprecated)]
        schedule.verify(&topo.network, &flows, &power()).unwrap();
        schedule.verify_on(&topo.csr(), &flows, &power()).unwrap();
    }

    #[test]
    fn verify_on_detects_the_same_capacity_violation() {
        let (topo, flows, _) = simple_instance();
        let schedule = rebuild_with_profile(&topo, RateProfile::constant(0.0, 0.4, 20.0));
        #[allow(deprecated)]
        let classic = schedule
            .verify(&topo.network, &flows, &power())
            .unwrap_err();
        let on_csr = schedule
            .verify_on(&topo.csr(), &flows, &power())
            .unwrap_err();
        assert_eq!(classic, on_csr);
    }

    #[test]
    fn energy_counts_both_links_of_the_path() {
        let (_, _, schedule) = simple_instance();
        let e = schedule.energy(&power());
        assert_eq!(e.active_links, 2);
        // Each of the two links: dynamic 2^2*4 = 16, idle 1*4 = 4.
        assert!((e.dynamic - 32.0).abs() < 1e-9);
        assert!((e.idle - 8.0).abs() < 1e-9);
        assert!((e.total() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn volume_shortfall_detected() {
        let (topo, flows, _) = simple_instance();
        let schedule = rebuild_with_profile(&topo, RateProfile::constant(0.0, 2.0, 2.0));
        let err = schedule
            .verify_on(&topo.csr(), &flows, &power())
            .unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::VolumeShortfall { flow: 0, .. })));
    }

    #[test]
    fn link_volume_shortfall_detected() {
        let (topo, flows, _) = simple_instance();
        let path = topo
            .network
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        // The nominal profile delivers everything, but the second link of
        // the path only carries half the data.
        let full = RateProfile::constant(0.0, 4.0, 2.0);
        let half = RateProfile::constant(0.0, 2.0, 2.0);
        let mut link_profiles = BTreeMap::new();
        link_profiles.insert(path.links()[0], full.clone());
        link_profiles.insert(path.links()[1], half);
        let schedule = Schedule::new(
            vec![FlowSchedule::per_link(0, path, full, link_profiles)],
            (0.0, 4.0),
        );
        let err = schedule
            .verify_on(&topo.csr(), &flows, &power())
            .unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::LinkVolumeShortfall { flow: 0, .. })));
    }

    #[test]
    fn transmission_outside_span_detected() {
        let (topo, flows, _) = simple_instance();
        let schedule = rebuild_with_profile(&topo, RateProfile::constant(1.0, 5.0, 2.0));
        let err = schedule
            .verify_on(&topo.csr(), &flows, &power())
            .unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::OutsideSpan { flow: 0, .. })));
    }

    #[test]
    fn capacity_violation_detected() {
        let (topo, flows, _) = simple_instance();
        let schedule = rebuild_with_profile(&topo, RateProfile::constant(0.0, 0.4, 20.0));
        let err = schedule
            .verify_on(&topo.csr(), &flows, &power())
            .unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::CapacityExceeded { .. })));
    }

    #[test]
    fn missing_flow_detected() {
        let (topo, flows, _) = simple_instance();
        let empty = Schedule::new(vec![], (0.0, 4.0));
        let err = empty.verify_on(&topo.csr(), &flows, &power()).unwrap_err();
        assert_eq!(err.violations, vec![ScheduleViolation::MissingFlow(0)]);
        assert!(err.to_string().contains("flow 0"));
    }

    #[test]
    fn wrong_endpoints_detected() {
        let (topo, flows, _) = simple_instance();
        let wrong_path = topo
            .network
            .shortest_path(topo.hosts()[0], topo.hosts()[1])
            .unwrap();
        let schedule = Schedule::new(
            vec![FlowSchedule::uniform(
                0,
                wrong_path,
                RateProfile::constant(0.0, 4.0, 2.0),
            )],
            (0.0, 4.0),
        );
        let err = schedule
            .verify_on(&topo.csr(), &flows, &power())
            .unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::WrongEndpoints { flow: 0 })));
    }

    #[test]
    fn link_profiles_aggregate_sharing_flows() {
        let topo = builders::line(3);
        let path01 = topo
            .network
            .shortest_path(topo.hosts()[0], topo.hosts()[1])
            .unwrap();
        let path02 = topo
            .network
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        let shared_link = path01.links()[0];
        let schedule = Schedule::new(
            vec![
                FlowSchedule::uniform(0, path01, RateProfile::constant(0.0, 2.0, 1.0)),
                FlowSchedule::uniform(1, path02, RateProfile::constant(1.0, 3.0, 2.0)),
            ],
            (0.0, 3.0),
        );
        let profiles = schedule.link_profiles();
        let shared = &profiles[&shared_link];
        assert_eq!(shared.rate_at(0.5), 1.0);
        assert_eq!(shared.rate_at(1.5), 3.0);
        assert_eq!(shared.rate_at(2.5), 2.0);
        // Flow 0 uses one link, flow 1 uses two; one of them is shared.
        assert_eq!(schedule.active_links().len(), 2);
    }

    #[test]
    fn per_link_profiles_are_used_for_energy() {
        // A store-and-forward schedule: same rate and duration on both
        // links, but shifted windows. Energy must count both links.
        let topo = builders::line(3);
        let path = topo
            .network
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        let mut link_profiles = BTreeMap::new();
        link_profiles.insert(path.links()[0], RateProfile::constant(0.0, 2.0, 4.0));
        link_profiles.insert(path.links()[1], RateProfile::constant(2.0, 4.0, 4.0));
        let schedule = Schedule::new(
            vec![FlowSchedule::per_link(
                0,
                path,
                RateProfile::constant(2.0, 4.0, 4.0),
                link_profiles,
            )],
            (0.0, 4.0),
        );
        let e = schedule.energy(&power());
        assert_eq!(e.active_links, 2);
        assert!((e.dynamic - 2.0 * 16.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn max_capacity_excess_reports_overload() {
        let (topo, _, _) = simple_instance();
        let schedule = rebuild_with_profile(&topo, RateProfile::constant(0.0, 1.0, 12.0));
        assert!((schedule.max_capacity_excess(&power()) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn activity_span_covers_all_links() {
        let topo = builders::line(3);
        let path = topo
            .network
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        let mut link_profiles = BTreeMap::new();
        link_profiles.insert(path.links()[0], RateProfile::constant(1.0, 2.0, 1.0));
        link_profiles.insert(path.links()[1], RateProfile::constant(3.0, 5.0, 1.0));
        let fs =
            FlowSchedule::per_link(0, path, RateProfile::constant(3.0, 5.0, 1.0), link_profiles);
        assert_eq!(fs.activity_span(), Some((1.0, 5.0)));
    }
}
