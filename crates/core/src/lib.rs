//! Core algorithms of *"Energy-Efficient Flow Scheduling and Routing with
//! Hard Deadlines in Data Center Networks"* (Wang et al., ICDCS 2014).
//!
//! The paper studies how to transmit a set of deadline-constrained flows on
//! a data-center network with minimum link energy, where every link follows
//! the combined power-down / speed-scaling power model of [`dcn_power`].
//! Two problem versions are treated, and this crate implements the paper's
//! algorithm for each:
//!
//! * **DCFS** (Deadline-Constrained Flow Scheduling) — routing paths are
//!   given, only transmission rates and timing are chosen. The optimal
//!   combinatorial algorithm **Most-Critical-First** (paper Algorithm 1) is
//!   implemented in [`dcfs`].
//! * **DCFSR** (Deadline-Constrained Flow Scheduling and Routing) — paths
//!   are chosen too. The problem is strongly NP-hard; the randomized
//!   approximation algorithm **Random-Schedule** (paper Algorithm 2) is
//!   implemented in [`dcfsr`], on top of the per-interval fractional
//!   multi-commodity-flow relaxation in [`relaxation`].
//!
//! # The session API
//!
//! Every scheme — the two paper algorithms, the five baselines of
//! [`baselines`], the fractional lower bound and the exhaustive optimum of
//! [`exact`] — is exposed behind one pluggable interface:
//!
//! * [`SolverContext`] is built **once** per network and owns all warm
//!   solver state (the CSR graph view, the arena-reuse shortest-path
//!   engine, the Frank–Wolfe scratch), so every caller gets the
//!   allocation-free hot path by default;
//! * [`Algorithm`] is the scheduler trait (`solve(ctx, flows, power)`),
//!   returning one [`Solution`] (schedule + energy + lower bound +
//!   diagnostics) or one typed [`SolveError`];
//! * [`AlgorithmRegistry`] resolves schedulers **by name** (`"dcfsr"`,
//!   `"sp-mcf"`, `"ecmp"`, ...), which is how the benchmark harness and
//!   its `--algorithms` flag select them.
//!
//! Supporting modules: [`schedule`] (the schedule data model, feasibility
//! verification and energy accounting), [`routing`] (path selection
//! strategies for the DCFS input and the SP+MCF baseline), [`pool`] (the
//! deterministic index-ordered worker pool behind interval-parallel solves
//! and the benchmark sweeps, with a [`ParallelConfig`] knob on the
//! [`SolverContext`]), and [`online`]
//! (the event-driven engine that reveals flows at their release times and
//! re-plans their rates per event through a pluggable [`OnlinePolicy`] —
//! from full residual re-solves with any wrapped [`Algorithm`] down to
//! solver-free EDF/SRPT/rapid-close-to-deadline priority rules, resolved
//! by name through the [`PolicyRegistry`] — recording admit/miss outcomes
//! against the offline clairvoyant bound).
//!
//! # Quick start
//!
//! ```
//! use dcn_core::prelude::*;
//! use dcn_flow::workload::UniformWorkload;
//! use dcn_power::PowerFunction;
//! use dcn_topology::builders;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small fat-tree and a random deadline-constrained workload.
//! let topo = builders::fat_tree(4);
//! let flows = UniformWorkload::paper_defaults(20, 42).generate(topo.hosts())?;
//! let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
//!
//! // One context per network; algorithms resolve by name.
//! let mut ctx = SolverContext::from_network(&topo.network)?;
//! let registry = AlgorithmRegistry::with_defaults();
//! let outcome = registry.create("dcfsr")?.solve(&mut ctx, &flows, &power)?;
//!
//! // The schedule is feasible and never beats the fractional lower bound.
//! ctx.verify(outcome.schedule.as_ref().unwrap(), &flows, &power)?;
//! assert!(outcome.total_energy().unwrap() >= outcome.lower_bound.unwrap() - 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod algorithm;
pub mod baselines;
pub mod context;
pub mod dcfs;
pub mod dcfsr;
pub mod error;
pub mod exact;
pub mod online;
pub mod pool;
pub mod registry;
pub mod relaxation;
pub mod routing;
pub mod schedule;
pub mod solution;

pub use algorithm::{
    Algorithm, AlgorithmRegistry, ConsolidatingMcf, Dcfsr, ExactBrute, FullRateGreedy,
    RelaxationLb, RoutedMcf,
};
pub use context::SolverContext;
pub use dcfs::{most_critical_first, DcfsError};
pub use dcfsr::{RandomSchedule, RandomScheduleConfig, RandomScheduleOutcome};
pub use error::SolveError;
pub use exact::{ExactError, ExactOutcome};
pub use online::{
    AdmissionRule, EngineConfig, FlowDecision, InFlightLedger, LedgerEntry, OnlineEngine,
    OnlineOutcome, OnlinePolicy, OnlineReport, PolicyRegistry, ShardMode,
};
pub use pool::ParallelConfig;
pub use relaxation::{
    interval_relaxation_on, interval_relaxation_threads, interval_relaxation_with,
    IntervalRelaxation, RelaxationSummary,
};
pub use routing::{Routing, RoutingError};
pub use schedule::{FlowSchedule, Schedule, ScheduleError, ScheduleViolation};
pub use solution::{Diagnostics, Solution};

#[allow(deprecated)]
pub use exact::exact_dcfsr;
#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
pub use online::{AdmissionPolicy, OnlineScheduler};
#[allow(deprecated)]
pub use relaxation::interval_relaxation;

/// Convenient glob import of the crate's main types.
pub mod prelude {
    pub use crate::algorithm::{
        Algorithm, AlgorithmRegistry, ConsolidatingMcf, Dcfsr, ExactBrute, FullRateGreedy,
        RelaxationLb, RoutedMcf,
    };
    pub use crate::baselines;
    pub use crate::context::SolverContext;
    pub use crate::dcfs::most_critical_first;
    pub use crate::dcfsr::{RandomSchedule, RandomScheduleConfig, RandomScheduleOutcome};
    pub use crate::error::SolveError;
    pub use crate::online::{
        AdmissionRule, EngineConfig, InFlightLedger, OnlineEngine, OnlineOutcome, OnlinePolicy,
        OnlineReport, PolicyRegistry, ShardMode,
    };
    pub use crate::pool::ParallelConfig;
    pub use crate::routing::Routing;
    pub use crate::schedule::{FlowSchedule, Schedule};
    pub use crate::solution::{Diagnostics, Solution};
}
