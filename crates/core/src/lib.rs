//! Core algorithms of *"Energy-Efficient Flow Scheduling and Routing with
//! Hard Deadlines in Data Center Networks"* (Wang et al., ICDCS 2014).
//!
//! The paper studies how to transmit a set of deadline-constrained flows on
//! a data-center network with minimum link energy, where every link follows
//! the combined power-down / speed-scaling power model of [`dcn_power`].
//! Two problem versions are treated, and this crate implements the paper's
//! algorithm for each:
//!
//! * **DCFS** (Deadline-Constrained Flow Scheduling) — routing paths are
//!   given, only transmission rates and timing are chosen. The optimal
//!   combinatorial algorithm **Most-Critical-First** (paper Algorithm 1) is
//!   implemented in [`dcfs`].
//! * **DCFSR** (Deadline-Constrained Flow Scheduling and Routing) — paths
//!   are chosen too. The problem is strongly NP-hard; the randomized
//!   approximation algorithm **Random-Schedule** (paper Algorithm 2) is
//!   implemented in [`dcfsr`], on top of the per-interval fractional
//!   multi-commodity-flow relaxation in [`relaxation`].
//!
//! Supporting modules: [`schedule`] (the schedule data model, feasibility
//! verification and energy accounting), [`routing`] (path selection
//! strategies for the DCFS input and the SP+MCF baseline), and
//! [`baselines`] (the comparison schemes used by the paper's Fig. 2 and the
//! extension experiments).
//!
//! # Quick start
//!
//! ```
//! use dcn_core::prelude::*;
//! use dcn_flow::workload::UniformWorkload;
//! use dcn_power::PowerFunction;
//! use dcn_topology::builders;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small fat-tree and a random deadline-constrained workload.
//! let topo = builders::fat_tree(4);
//! let flows = UniformWorkload::paper_defaults(20, 42).generate(topo.hosts())?;
//! let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
//!
//! // Joint scheduling and routing with Random-Schedule.
//! let outcome = RandomSchedule::new(RandomScheduleConfig::default())
//!     .run(&topo.network, &flows, &power)?;
//! outcome.schedule.verify(&topo.network, &flows, &power)?;
//!
//! // The energy is at least the fractional lower bound.
//! assert!(outcome.schedule.energy(&power).total() >= outcome.lower_bound - 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod dcfs;
pub mod dcfsr;
pub mod exact;
pub mod relaxation;
pub mod routing;
pub mod schedule;

pub use dcfs::{most_critical_first, DcfsError};
pub use dcfsr::{RandomSchedule, RandomScheduleConfig, RandomScheduleOutcome};
pub use exact::{exact_dcfsr, ExactError, ExactOutcome};
pub use relaxation::{
    interval_relaxation, interval_relaxation_on, IntervalRelaxation, RelaxationSummary,
};
pub use routing::{Routing, RoutingError};
pub use schedule::{FlowSchedule, Schedule, ScheduleError, ScheduleViolation};

/// Convenient glob import of the crate's main types.
pub mod prelude {
    pub use crate::baselines;
    pub use crate::dcfs::most_critical_first;
    pub use crate::dcfsr::{RandomSchedule, RandomScheduleConfig, RandomScheduleOutcome};
    pub use crate::relaxation::interval_relaxation;
    pub use crate::routing::Routing;
    pub use crate::schedule::{FlowSchedule, Schedule};
}
