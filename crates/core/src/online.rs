//! Online rolling-horizon scheduling: flows are revealed at their release
//! times and the schedule is re-planned at every arrival event.
//!
//! The paper's DCFSR model is *clairvoyant*: the whole flow set
//! `[release, deadline, volume]` is known at time zero. Its motivating
//! workloads (partition–aggregate search traffic, MapReduce shuffles)
//! arrive online, so this module evaluates every [`Algorithm`] under
//! dynamic arrivals:
//!
//! * an [`OnlineScheduler`] wraps any registry algorithm and, at each
//!   arrival event, re-solves the **residual instance** — the remaining
//!   volumes of admitted in-flight flows plus the newly arrived flows — on
//!   a shared [`SolverContext`], so the CSR view, the shortest-path arenas
//!   and the Frank–Wolfe buffers stay warm across every re-solve (no
//!   per-event graph rebuilds);
//! * an [`AdmissionPolicy`] decides which new flows are accepted:
//!   [`AdmissionPolicy::AdmitAll`] takes everything (flows may then miss
//!   deadlines under overload), [`AdmissionPolicy::RejectInfeasible`]
//!   admits a flow only when the fractional relaxation of the candidate
//!   residual instance fits under every link capacity
//!   (see [`fractionally_feasible`]);
//! * only the slice of each freshly solved schedule up to the next arrival
//!   is **committed**; the [`OnlineOutcome`] stitches the committed slices
//!   into one executable [`Schedule`] and an [`OnlineReport`] records the
//!   per-flow admit/miss decisions, the re-solve counts and the online
//!   energy versus the offline clairvoyant bound.
//!
//! With every flow released at the same instant there is exactly one
//! arrival event, the residual instance *is* the full instance and the
//! committed schedule is the wrapped algorithm's offline schedule,
//! bit for bit — `tests/online_offline.rs` pins that equivalence.
//!
//! ```
//! use dcn_core::online::{AdmissionPolicy, OnlineScheduler};
//! use dcn_core::{AlgorithmRegistry, SolverContext};
//! use dcn_flow::workload::{ArrivalProcess, UniformWorkload};
//! use dcn_power::PowerFunction;
//! use dcn_topology::builders;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = builders::fat_tree(4);
//! let base = UniformWorkload::paper_defaults(12, 7).generate(topo.hosts())?;
//! let flows = ArrivalProcess::with_load(2.0, 3).apply(&base)?;
//! let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
//!
//! let mut ctx = SolverContext::from_network(&topo.network)?;
//! let registry = AlgorithmRegistry::with_defaults();
//! let mut online = OnlineScheduler::new(registry.create("dcfsr")?, AdmissionPolicy::AdmitAll);
//! online.set_seed(7);
//! let outcome = online.run_vs_offline(&mut ctx, &flows, &power)?;
//! assert_eq!(outcome.report.decisions.len(), flows.len());
//! assert!(outcome.report.resolves >= 1);
//! assert!(outcome.report.competitive_ratio().unwrap() > 0.0);
//! # Ok(())
//! # }
//! ```

use crate::algorithm::Algorithm;
use crate::context::SolverContext;
use crate::error::SolveError;
use crate::schedule::{FlowSchedule, Schedule};
use crate::solution::Solution;
use dcn_flow::{Flow, FlowId, FlowSet};
use dcn_power::{PowerFunction, RateProfile};
use dcn_solver::fmcf::FmcfSolverConfig;
use dcn_topology::LinkId;
use std::collections::BTreeMap;

/// Relative volume tolerance under which an in-flight flow counts as fully
/// served (matches the verification tolerance of [`Schedule`]).
const VOLUME_TOL: f64 = 1e-9;

/// How the online loop decides whether a newly arrived flow is accepted.
#[derive(Debug, Clone, Default)]
pub enum AdmissionPolicy {
    /// Every arrival is admitted. Under overload the re-solves may fail or
    /// flows may run out of time; the [`OnlineReport`] records the misses.
    #[default]
    AdmitAll,
    /// An arrival is admitted only if the fractional relaxation of the
    /// candidate residual instance (in-flight residuals + the candidate)
    /// fits under every link capacity — the LP-relaxation feasibility
    /// check of [`fractionally_feasible`].
    RejectInfeasible {
        /// Frank–Wolfe configuration of the feasibility relaxation.
        config: FmcfSolverConfig,
        /// Relative capacity slack tolerated in the fractional loads (the
        /// relaxation enforces capacities through a penalty, so converged
        /// solutions may overshoot by a hair).
        slack: f64,
    },
}

impl AdmissionPolicy {
    /// The [`AdmissionPolicy::RejectInfeasible`] policy with the given
    /// Frank–Wolfe configuration and the default `1e-3` capacity slack.
    pub fn reject_infeasible(config: FmcfSolverConfig) -> Self {
        AdmissionPolicy::RejectInfeasible {
            config,
            slack: 1e-3,
        }
    }

    /// A short stable name for artifacts and tables (`admit-all` /
    /// `reject-infeasible`).
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::AdmitAll => "admit-all",
            AdmissionPolicy::RejectInfeasible { .. } => "reject-infeasible",
        }
    }
}

/// The admit/deliver outcome of one flow under the online loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDecision {
    /// The flow.
    pub flow: FlowId,
    /// Whether the admission policy accepted the flow.
    pub admitted: bool,
    /// Volume committed for the flow over the whole run.
    pub delivered: f64,
    /// Whether an *admitted* flow failed to receive its full volume by its
    /// deadline (rejected flows are never counted as misses).
    pub missed: bool,
}

/// What the online loop did: per-flow decisions, event/re-solve counters
/// and the energy of the stitched schedule, with the offline clairvoyant
/// energy alongside when [`OnlineScheduler::run_vs_offline`] computed it.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// One decision per flow of the instance, in flow-id order.
    pub decisions: Vec<FlowDecision>,
    /// Number of distinct arrival events (groups of equal release times).
    pub events: usize,
    /// Number of residual re-solves performed (one per event with a
    /// non-empty residual instance).
    pub resolves: usize,
    /// Number of re-solves that returned an error (the loop then keeps the
    /// previous commitments and the affected flows may miss).
    pub solve_failures: usize,
    /// Energy of the stitched online schedule (the paper's objective).
    pub online_energy: f64,
    /// Energy of the wrapped algorithm solving the full instance with
    /// clairvoyant knowledge, when computed.
    pub offline_energy: Option<f64>,
}

impl OnlineReport {
    /// Number of admitted flows.
    pub fn admitted(&self) -> usize {
        self.decisions.iter().filter(|d| d.admitted).count()
    }

    /// Number of rejected flows.
    pub fn rejected(&self) -> usize {
        self.decisions.iter().filter(|d| !d.admitted).count()
    }

    /// Number of admitted flows that missed their deadline.
    pub fn missed(&self) -> usize {
        self.decisions.iter().filter(|d| d.missed).count()
    }

    /// Per-flow admission mask, indexed by flow id (the shape
    /// `Simulator::run_admitted` consumes).
    pub fn admitted_mask(&self) -> Vec<bool> {
        self.decisions.iter().map(|d| d.admitted).collect()
    }

    /// `online_energy / offline_energy`, when the offline bound was
    /// computed and is positive.
    pub fn competitive_ratio(&self) -> Option<f64> {
        match self.offline_energy {
            Some(offline) if offline > 0.0 => Some(self.online_energy / offline),
            _ => None,
        }
    }
}

/// The result of one online run: the stitched executable schedule, the
/// report, and (after [`OnlineScheduler::run_vs_offline`]) the offline
/// clairvoyant solution for comparison.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The committed slices of every re-solve, stitched into one schedule
    /// over the instance horizon.
    pub schedule: Schedule,
    /// What the loop decided and measured.
    pub report: OnlineReport,
    /// The clairvoyant solution of the wrapped algorithm on the full
    /// instance, when computed.
    pub offline: Option<Solution>,
}

/// Builds the residual copy of `flow` as seen at online time `now`: the
/// release is advanced to `now`, the deadline is kept, and the volume is
/// replaced by `remaining`.
///
/// # Errors
///
/// * [`SolveError::DeadlinePassed`] when the flow's deadline is not
///   strictly after `now` (the residual span would be empty — the naive
///   `Flow::new` call would reject it, and earlier drafts of the loop
///   panicked here).
/// * [`SolveError::InvalidInput`] when `remaining` is not a positive
///   finite volume.
pub fn residual_flow(
    flow: &Flow,
    now: f64,
    remaining: f64,
    residual_id: FlowId,
) -> Result<Flow, SolveError> {
    if flow.deadline <= now {
        return Err(SolveError::DeadlinePassed {
            flow: flow.id,
            time: now,
        });
    }
    Flow::new(
        residual_id,
        flow.src,
        flow.dst,
        flow.release.max(now),
        flow.deadline,
        remaining,
    )
    .map_err(SolveError::from)
}

/// The LP-relaxation feasibility check behind
/// [`AdmissionPolicy::RejectInfeasible`]: solves the per-interval
/// fractional relaxation of `flows` on the context (warm Frank–Wolfe
/// scratch) and reports whether every interval's fractional link loads fit
/// under `min(link capacity, power capacity) * (1 + slack)`.
///
/// # Errors
///
/// Propagates [`SolverContext::relax`] errors: an empty candidate set is
/// [`SolveError::EmptyFlowSet`], a disconnected commodity is
/// [`SolveError::Unroutable`].
pub fn fractionally_feasible(
    ctx: &mut SolverContext<'_>,
    flows: &FlowSet,
    power: &PowerFunction,
    config: &FmcfSolverConfig,
    slack: f64,
) -> Result<bool, SolveError> {
    let relaxation = ctx.relax(flows, power, config)?;
    let cap = power.capacity();
    for interval in &relaxation.intervals {
        for (index, &load) in interval.solution.total_loads().iter().enumerate() {
            let capacity = ctx.graph().capacity(LinkId(index)).min(cap);
            if load > capacity * (1.0 + slack) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Per-flow bookkeeping of the event loop.
#[derive(Debug, Clone, Copy, Default)]
struct FlowState {
    admitted: bool,
    /// Admitted, not yet fully served, deadline not yet passed.
    in_flight: bool,
    missed: bool,
    delivered: f64,
}

/// The rolling-horizon driver: wraps one [`Algorithm`] and executes a flow
/// set under online arrivals (see the [module docs](self)).
#[derive(Debug)]
pub struct OnlineScheduler {
    algorithm: Box<dyn Algorithm>,
    policy: AdmissionPolicy,
    seed: u64,
}

impl OnlineScheduler {
    /// Creates the online loop around a (registry-created) algorithm.
    pub fn new(algorithm: Box<dyn Algorithm>, policy: AdmissionPolicy) -> Self {
        Self {
            algorithm,
            policy,
            seed: 0,
        }
    }

    /// Re-seeds the loop. Event `k` re-seeds the wrapped algorithm with
    /// `seed + k`, so the first event — and therefore the
    /// full-knowledge run with a single arrival event — uses exactly
    /// `seed`, matching an offline solve seeded the same way.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> &dyn Algorithm {
        self.algorithm.as_ref()
    }

    /// The admission policy in use.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// Executes the instance online: reveals flows at their release times,
    /// re-solves the residual instance at every arrival event and stitches
    /// the committed slices into one schedule.
    ///
    /// A re-solve *error* (e.g. an infeasible residual under `AdmitAll`
    /// overload) is not fatal: the loop counts it in
    /// [`OnlineReport::solve_failures`], keeps the commitments made so far
    /// and carries on — the affected flows are recorded as missed.
    ///
    /// # Errors
    ///
    /// * [`SolveError::EmptyFlowSet`] for an empty instance (there is no
    ///   event to run).
    /// * [`SolveError::InvalidInput`] for endpoints outside the network, or
    ///   when the wrapped algorithm is bound-only (`lb`) and produces no
    ///   schedule to commit.
    pub fn run(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<OnlineOutcome, SolveError> {
        ctx.validate_flow_shape(flows)?;
        let events = arrival_events(flows);
        let mut state = vec![FlowState::default(); flows.len()];
        // Committed slices per flow, in first-commitment order so a
        // single-event run reproduces the inner schedule's layout exactly.
        let mut commits: Vec<(FlowId, Vec<FlowSchedule>)> = Vec::new();
        let mut commit_index: BTreeMap<FlowId, usize> = BTreeMap::new();
        let mut resolves = 0usize;
        let mut solve_failures = 0usize;

        for (k, (now, arrivals)) in events.iter().enumerate() {
            let next = events.get(k + 1).map(|(t, _)| *t);

            // Retire in-flight flows: fully served, or out of time.
            for (id, s) in state.iter_mut().enumerate() {
                if !s.in_flight {
                    continue;
                }
                let flow = flows.flow(id);
                if s.delivered >= flow.volume * (1.0 - VOLUME_TOL) {
                    s.in_flight = false;
                } else if flow.deadline <= *now {
                    s.in_flight = false;
                    s.missed = true;
                }
            }

            // Admission of the new arrivals, in flow-id order.
            for &id in arrivals {
                let admit = match &self.policy {
                    AdmissionPolicy::AdmitAll => true,
                    AdmissionPolicy::RejectInfeasible { config, slack } => {
                        let (candidate, _) = residual_instance(flows, &state, *now, Some(id))?;
                        fractionally_feasible(ctx, &candidate, power, config, *slack)?
                    }
                };
                if admit {
                    state[id].admitted = true;
                    state[id].in_flight = true;
                }
            }

            // The residual instance of this event.
            let (residual, map) = match residual_instance(flows, &state, *now, None) {
                Ok(pair) => pair,
                Err(SolveError::EmptyFlowSet) => continue, // nothing to re-solve
                Err(e) => return Err(e),
            };

            self.algorithm.set_seed(self.seed.wrapping_add(k as u64));
            resolves += 1;
            let solution = match self.algorithm.solve(ctx, &residual, power) {
                Ok(solution) => solution,
                Err(_) => {
                    solve_failures += 1;
                    continue;
                }
            };
            let Some(schedule) = solution.schedule else {
                return Err(SolveError::InvalidInput {
                    reason: format!(
                        "online scheduler wraps {:?}, which produces no schedule to commit",
                        self.algorithm.name()
                    ),
                });
            };

            // Commit the slice of the fresh schedule up to the next event
            // (or all of it after the last event). The last-window commit
            // clones the inner flow schedules verbatim, which is what makes
            // a single-event run bit-identical to the offline solve.
            for fs in schedule.flow_schedules() {
                let orig = map[fs.flow];
                let committed = match next {
                    None => {
                        let mut clone = fs.clone();
                        clone.flow = orig;
                        clone
                    }
                    Some(until) => clip_flow_schedule(fs, orig, *now, until),
                };
                if committed.profile.is_empty() && committed.link_profiles.is_empty() {
                    continue;
                }
                state[orig].delivered += committed.profile.volume();
                match commit_index.get(&orig) {
                    Some(&slot) => commits[slot].1.push(committed),
                    None => {
                        commit_index.insert(orig, commits.len());
                        commits.push((orig, vec![committed]));
                    }
                }
            }
        }

        // Final accounting: an admitted flow that never received its full
        // volume missed its deadline.
        for (id, s) in state.iter_mut().enumerate() {
            if s.admitted && s.delivered < flows.flow(id).volume * (1.0 - 1e-6) {
                s.missed = true;
            }
        }

        let schedule = stitch(commits, flows.horizon());
        let online_energy = schedule.energy(power).total();
        let decisions = state
            .iter()
            .enumerate()
            .map(|(id, s)| FlowDecision {
                flow: id,
                admitted: s.admitted,
                delivered: s.delivered,
                missed: s.missed,
            })
            .collect();
        Ok(OnlineOutcome {
            schedule,
            report: OnlineReport {
                decisions,
                events: events.len(),
                resolves,
                solve_failures,
                online_energy,
                offline_energy: None,
            },
            offline: None,
        })
    }

    /// [`OnlineScheduler::run`], then solves the full instance with the
    /// same (re-seeded) algorithm and clairvoyant knowledge on the same
    /// warm context, recording the offline energy in the report — the
    /// denominator of [`OnlineReport::competitive_ratio`].
    ///
    /// # Errors
    ///
    /// Propagates errors of the online run and of the offline solve.
    pub fn run_vs_offline(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<OnlineOutcome, SolveError> {
        let mut outcome = self.run(ctx, flows, power)?;
        self.algorithm.set_seed(self.seed);
        let offline = self.algorithm.solve(ctx, flows, power)?;
        outcome.report.offline_energy = offline.total_energy();
        outcome.offline = Some(offline);
        Ok(outcome)
    }
}

/// Groups the flows of the instance by release time: one `(time, flow
/// ids)` event per distinct release, in time order (ids ascending within
/// an event).
fn arrival_events(flows: &FlowSet) -> Vec<(f64, Vec<FlowId>)> {
    let mut order: Vec<FlowId> = (0..flows.len()).collect();
    order.sort_by(|&a, &b| {
        flows
            .flow(a)
            .release
            .partial_cmp(&flows.flow(b).release)
            .expect("flow times are finite")
            .then(a.cmp(&b))
    });
    let mut events: Vec<(f64, Vec<FlowId>)> = Vec::new();
    for id in order {
        let release = flows.flow(id).release;
        match events.last_mut() {
            Some((t, ids)) if *t == release => ids.push(id),
            _ => events.push((release, vec![id])),
        }
    }
    events
}

/// Builds the residual instance at time `now` from every in-flight flow
/// (plus `extra`, a not-yet-admitted candidate), in original-id order, and
/// the residual-id → original-id map.
fn residual_instance(
    flows: &FlowSet,
    state: &[FlowState],
    now: f64,
    extra: Option<FlowId>,
) -> Result<(FlowSet, Vec<FlowId>), SolveError> {
    let mut map: Vec<FlowId> = state
        .iter()
        .enumerate()
        .filter(|&(id, s)| s.in_flight || extra == Some(id))
        .map(|(id, _)| id)
        .collect();
    map.sort_unstable();
    if map.is_empty() {
        return Err(SolveError::EmptyFlowSet);
    }
    let mut residual = Vec::with_capacity(map.len());
    for (rid, &orig) in map.iter().enumerate() {
        let flow = flows.flow(orig);
        residual.push(residual_flow(
            flow,
            now,
            flow.volume - state[orig].delivered,
            rid,
        )?);
    }
    let set = FlowSet::from_flows(residual).map_err(SolveError::from)?;
    Ok((set, map))
}

/// Restricts one inner flow schedule to the commit window `[from, to)`,
/// relabelling it with the original flow id. Links whose restricted
/// profile is empty are dropped.
fn clip_flow_schedule(fs: &FlowSchedule, orig: FlowId, from: f64, to: f64) -> FlowSchedule {
    let link_profiles: BTreeMap<LinkId, RateProfile> = fs
        .link_profiles
        .iter()
        .map(|(&link, profile)| (link, profile.restricted(from, to)))
        .filter(|(_, profile)| profile.is_active())
        .collect();
    FlowSchedule::per_link(
        orig,
        fs.path.clone(),
        fs.profile.restricted(from, to),
        link_profiles,
    )
}

/// Merges each flow's committed slices into one [`FlowSchedule`] and
/// assembles the final schedule over `horizon`. A flow served by a single
/// commit keeps that commit verbatim; a multi-commit flow keeps the path
/// of its *last* re-solve (the profiles carry the links actually used in
/// every window, so energy and simulation see the true loads even when the
/// routing changed between re-solves).
fn stitch(commits: Vec<(FlowId, Vec<FlowSchedule>)>, horizon: (f64, f64)) -> Schedule {
    let mut flow_schedules = Vec::with_capacity(commits.len());
    for (flow, mut parts) in commits {
        if parts.len() == 1 {
            flow_schedules.push(parts.pop().expect("one part"));
            continue;
        }
        let path = parts.last().expect("non-empty parts").path.clone();
        let mut profile = RateProfile::new();
        let mut link_profiles: BTreeMap<LinkId, RateProfile> = BTreeMap::new();
        for part in &parts {
            profile.merge(&part.profile);
            for (&link, slice) in &part.link_profiles {
                link_profiles.entry(link).or_default().merge(slice);
            }
        }
        flow_schedules.push(FlowSchedule::per_link(flow, path, profile, link_profiles));
    }
    Schedule::new(flow_schedules, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{AlgorithmRegistry, Dcfsr};
    use dcn_topology::builders;

    fn x2(capacity: f64) -> PowerFunction {
        PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
    }

    fn online(algorithm: &str, policy: AdmissionPolicy) -> OnlineScheduler {
        let registry = AlgorithmRegistry::with_defaults();
        OnlineScheduler::new(registry.create(algorithm).unwrap(), policy)
    }

    #[test]
    fn arrival_events_group_equal_releases() {
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([
            (a, c, 2.0, 6.0, 1.0),
            (a, c, 0.0, 4.0, 1.0),
            (a, c, 2.0, 8.0, 1.0),
        ])
        .unwrap();
        let events = arrival_events(&flows);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], (0.0, vec![1]));
        assert_eq!(events[1], (2.0, vec![0, 2]));
    }

    #[test]
    fn residual_flow_after_the_deadline_is_a_typed_error() {
        let flow = Flow::new(
            3,
            dcn_topology::NodeId(0),
            dcn_topology::NodeId(1),
            0.0,
            2.0,
            4.0,
        )
        .unwrap();
        assert_eq!(
            residual_flow(&flow, 2.0, 1.0, 0).unwrap_err(),
            SolveError::DeadlinePassed { flow: 3, time: 2.0 }
        );
        assert_eq!(
            residual_flow(&flow, 5.0, 1.0, 0).unwrap_err(),
            SolveError::DeadlinePassed { flow: 3, time: 5.0 }
        );
        // A live flow yields the residual with the advanced release.
        let residual = residual_flow(&flow, 1.0, 2.5, 0).unwrap();
        assert_eq!(residual.release, 1.0);
        assert_eq!(residual.deadline, 2.0);
        assert_eq!(residual.volume, 2.5);
        // A non-positive remaining volume is invalid input, not a panic.
        assert!(matches!(
            residual_flow(&flow, 1.0, 0.0, 0).unwrap_err(),
            SolveError::InvalidInput { .. }
        ));
    }

    #[test]
    fn empty_instance_is_a_typed_error_not_a_panic() {
        let topo = builders::line(3);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let empty = FlowSet::from_flows(vec![]).unwrap();
        let err = online("dcfsr", AdmissionPolicy::AdmitAll)
            .run(&mut ctx, &empty, &x2(10.0))
            .unwrap_err();
        assert_eq!(err, SolveError::EmptyFlowSet);
        // The feasibility primitive reports the same typed error on an
        // empty residual set.
        assert_eq!(
            fractionally_feasible(&mut ctx, &empty, &x2(10.0), &Default::default(), 1e-3)
                .unwrap_err(),
            SolveError::EmptyFlowSet
        );
    }

    #[test]
    fn bound_only_algorithms_are_rejected_with_a_typed_error() {
        let topo = builders::line(3);
        let flows =
            FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[2], 0.0, 4.0, 8.0)]).unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let err = online("lb", AdmissionPolicy::AdmitAll)
            .run(&mut ctx, &flows, &x2(10.0))
            .unwrap_err();
        assert!(matches!(err, SolveError::InvalidInput { .. }));
        assert!(err.to_string().contains("lb"));
    }

    #[test]
    fn single_event_run_commits_the_offline_schedule_verbatim() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = dcn_flow::workload::UniformWorkload::paper_defaults(10, 11)
            .generate(topo.hosts())
            .unwrap();
        // Re-release everything at t = 0: one arrival event.
        let zeroed = FlowSet::from_flows(
            flows
                .iter()
                .map(|f| Flow::new(f.id, f.src, f.dst, 0.0, f.deadline, f.volume).unwrap())
                .collect(),
        )
        .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut loop_ = online("dcfsr", AdmissionPolicy::AdmitAll);
        loop_.set_seed(11);
        let outcome = loop_.run_vs_offline(&mut ctx, &zeroed, &power).unwrap();
        assert_eq!(outcome.report.events, 1);
        assert_eq!(outcome.report.resolves, 1);
        assert_eq!(outcome.report.solve_failures, 0);

        let mut offline = Dcfsr::default();
        offline.set_seed(11);
        let clairvoyant = offline.solve(&mut ctx, &zeroed, &power).unwrap();
        assert_eq!(&outcome.schedule, clairvoyant.schedule.as_ref().unwrap());
        assert_eq!(
            outcome.report.online_energy,
            clairvoyant.total_energy().unwrap()
        );
        assert_eq!(outcome.report.competitive_ratio(), Some(1.0));
    }

    #[test]
    fn staggered_arrivals_deliver_every_admitted_flow() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = dcn_flow::workload::UniformWorkload::paper_defaults(14, 4)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut loop_ = online("dcfsr", AdmissionPolicy::AdmitAll);
        loop_.set_seed(4);
        let outcome = loop_.run(&mut ctx, &flows, &power).unwrap();
        assert_eq!(outcome.report.events, 14);
        assert_eq!(outcome.report.admitted(), 14);
        assert_eq!(outcome.report.solve_failures, 0);
        assert_eq!(outcome.report.missed(), 0);
        for d in &outcome.report.decisions {
            let flow = flows.flow(d.flow);
            assert!(
                (d.delivered - flow.volume).abs() <= 1e-6 * flow.volume,
                "flow {}: delivered {} of {}",
                d.flow,
                d.delivered,
                flow.volume
            );
        }
        // All activity stays inside each flow's span, whatever window it
        // was committed in.
        for fs in outcome.schedule.flow_schedules() {
            let flow = flows.flow(fs.flow);
            let (start, end) = fs.activity_span().expect("admitted flows transmit");
            assert!(start >= flow.release - 1e-9 && end <= flow.deadline + 1e-9);
        }
        // The reported energy is the stitched schedule's energy.
        assert_eq!(
            outcome.report.online_energy,
            outcome.schedule.energy(&power).total()
        );
    }

    #[test]
    fn reject_infeasible_rejects_only_the_impossible_flow() {
        // Capacity 10: a volume-100 flow over a unit span needs rate 100.
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([
            (a, c, 0.0, 10.0, 8.0),  // easy
            (a, c, 1.0, 2.0, 100.0), // impossible even alone
            (a, c, 2.0, 12.0, 8.0),  // easy again
        ])
        .unwrap();
        let power = x2(10.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut loop_ = online(
            "sp-mcf",
            AdmissionPolicy::reject_infeasible(Default::default()),
        );
        loop_.set_seed(1);
        let outcome = loop_.run(&mut ctx, &flows, &power).unwrap();
        assert_eq!(outcome.report.admitted(), 2);
        assert_eq!(outcome.report.rejected(), 1);
        assert!(!outcome.report.decisions[1].admitted);
        assert_eq!(outcome.report.missed(), 0);
        assert_eq!(outcome.report.solve_failures, 0);
        // Rejected flows never transmit.
        assert!(outcome.schedule.flow_schedule(1).is_none());
    }

    #[test]
    fn admit_all_solve_failures_are_counted_and_surface_as_misses() {
        /// An algorithm whose every solve fails — the deterministic stand-in
        /// for an infeasible residual under `AdmitAll` overload.
        #[derive(Debug)]
        struct NeverSolves;
        impl Algorithm for NeverSolves {
            fn name(&self) -> &str {
                "never"
            }
            fn solve(
                &mut self,
                _ctx: &mut SolverContext<'_>,
                _flows: &FlowSet,
                _power: &PowerFunction,
            ) -> Result<Solution, SolveError> {
                Err(SolveError::Infeasible { link: LinkId(0) })
            }
        }

        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([(a, c, 0.0, 4.0, 8.0), (a, c, 1.0, 5.0, 8.0)]).unwrap();
        let power = x2(10.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let outcome = OnlineScheduler::new(Box::new(NeverSolves), AdmissionPolicy::AdmitAll)
            .run(&mut ctx, &flows, &power)
            .unwrap();
        // Every re-solve failed; the loop carried on without panicking and
        // every admitted flow is recorded as missed with zero delivery.
        assert_eq!(outcome.report.events, 2);
        assert_eq!(outcome.report.resolves, 2);
        assert_eq!(outcome.report.solve_failures, 2);
        assert_eq!(outcome.report.admitted(), 2);
        assert_eq!(outcome.report.missed(), 2);
        assert!(outcome.schedule.is_empty());
        assert_eq!(outcome.report.online_energy, 0.0);
    }

    #[test]
    fn multi_window_commits_stitch_into_the_full_delivery() {
        // Two staggered flows on a line force a clipped first window.
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([(a, c, 0.0, 8.0, 8.0), (a, c, 4.0, 12.0, 8.0)]).unwrap();
        let power = x2(10.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let outcome = online("sp-mcf", AdmissionPolicy::AdmitAll)
            .run(&mut ctx, &flows, &power)
            .unwrap();
        assert_eq!(outcome.report.events, 2);
        assert_eq!(outcome.report.resolves, 2);
        assert_eq!(outcome.report.missed(), 0);
        // Flow 0 is committed across both windows and still delivers fully
        // within its span; the stitched schedule verifies end to end
        // (sp-mcf keeps the single line path, so the per-link volume check
        // applies even across re-solves).
        ctx.verify(&outcome.schedule, &flows, &power).unwrap();
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(AdmissionPolicy::AdmitAll.name(), "admit-all");
        assert_eq!(
            AdmissionPolicy::reject_infeasible(Default::default()).name(),
            "reject-infeasible"
        );
    }
}
