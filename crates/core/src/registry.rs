//! The shared string-keyed factory registry behind
//! [`crate::AlgorithmRegistry`] and [`crate::online::PolicyRegistry`].
//!
//! Both registries expose the same surface — ordered registration,
//! replace-in-place, name lookup — and enforce the same *round-trip
//! invariant*: a factory registered under `name` must produce instances
//! whose self-reported name equals `name`, so `create(name).name() ==
//! name` always holds. [`Registry`] implements that once, generically
//! over the trait object type; the two public wrappers keep their
//! domain-specific typed errors ([`crate::SolveError::UnknownAlgorithm`],
//! [`crate::SolveError::UnknownPolicy`]) and default tables.

use std::fmt;
use std::sync::Arc;

/// A shared, reference-counted factory producing boxed `T` instances.
type Factory<T> = Arc<dyn Fn() -> Box<T> + Send + Sync>;

/// A string-keyed registry of factories producing boxed `T` trait
/// objects, preserving registration order and enforcing the name
/// round-trip invariant on [`Registry::register`].
///
/// Factories are reference-counted, so cloning a registry is cheap and
/// shares them — which is how the benchmark harness hands its tuned
/// registry to every [`crate::online::EngineConfig`] it builds.
pub struct Registry<T: ?Sized> {
    entries: Vec<(String, Factory<T>)>,
    /// The trait-method label quoted by the mismatch panic, e.g.
    /// `"Algorithm::name()"`.
    label: &'static str,
    /// Extracts the self-reported name of a produced instance.
    name_of: fn(&T) -> &str,
}

impl<T: ?Sized> Registry<T> {
    /// Creates an empty registry. `label` names the trait method quoted in
    /// the mismatch panic; `name_of` extracts an instance's name.
    pub fn new(label: &'static str, name_of: fn(&T) -> &str) -> Self {
        Self {
            entries: Vec::new(),
            label,
            name_of,
        }
    }

    /// Registers (or replaces in place) a factory under `name`.
    ///
    /// # Panics
    ///
    /// Panics if the factory produces an instance whose self-reported name
    /// differs from `name` — the round-trip invariant.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<T> + Send + Sync + 'static,
    ) {
        let name = name.into();
        assert_eq!(
            (self.name_of)(&factory()),
            name,
            "registry name must match {}",
            self.label
        );
        match self.entries.iter_mut().find(|(n, _)| *n == name) {
            Some((_, f)) => *f = Arc::new(factory),
            None => self.entries.push((name, Arc::new(factory))),
        }
    }

    /// Instantiates the entry registered under `name`, or `None` for
    /// unregistered names (the wrappers map this to their typed error).
    pub fn create(&self, name: &str) -> Option<Box<T>> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, factory)| factory())
    }

    /// Returns `true` if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl<T: ?Sized> Clone for Registry<T> {
    /// Clones share the reference-counted factories (a `derive` would
    /// demand `T: Clone`, which trait objects cannot satisfy).
    fn clone(&self) -> Self {
        Self {
            entries: self.entries.clone(),
            label: self.label,
            name_of: self.name_of,
        }
    }
}

impl<T: ?Sized> fmt::Debug for Registry<T> {
    /// The factories are opaque closures, so print the registered names.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Named {
        fn name(&self) -> &str;
    }

    struct Fixed(&'static str);

    impl Named for Fixed {
        fn name(&self) -> &str {
            self.0
        }
    }

    fn registry() -> Registry<dyn Named> {
        Registry::new("Named::name()", |n| n.name())
    }

    #[test]
    fn round_trips_and_preserves_registration_order() {
        let mut r = registry();
        r.register("b", || Box::new(Fixed("b")));
        r.register("a", || Box::new(Fixed("a")));
        assert_eq!(r.names(), vec!["b", "a"]);
        assert!(r.contains("a") && !r.contains("c"));
        assert_eq!(r.create("a").unwrap().name(), "a");
        assert!(r.create("c").is_none());
    }

    #[test]
    fn replaces_in_place_under_the_same_name() {
        let mut r = registry();
        r.register("a", || Box::new(Fixed("a")));
        r.register("b", || Box::new(Fixed("b")));
        r.register("a", || Box::new(Fixed("a")));
        assert_eq!(r.names(), vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "registry name must match Named::name()")]
    fn mismatched_names_panic_with_the_trait_label() {
        let mut r = registry();
        r.register("not-a", || Box::new(Fixed("a")));
    }

    #[test]
    fn clones_share_the_factories() {
        let mut r = registry();
        r.register("a", || Box::new(Fixed("a")));
        let cloned = r.clone();
        r.register("b", || Box::new(Fixed("b")));
        assert_eq!(cloned.names(), vec!["a"], "clones diverge independently");
        assert_eq!(cloned.create("a").unwrap().name(), "a");
    }

    #[test]
    fn debug_prints_the_names() {
        let mut r = registry();
        r.register("a", || Box::new(Fixed("a")));
        assert!(format!("{r:?}").contains("\"a\""));
    }
}
