//! **Random-Schedule** — the randomized approximation algorithm for DCFSR
//! (paper Algorithm 2, Section V).
//!
//! DCFSR asks for the routing path *and* the rate schedule of every flow.
//! The problem is strongly NP-hard (Theorem 2) and has no FPTAS (Theorem 3),
//! so the paper approximates it:
//!
//! 1. **Relax** to a per-interval fractional multi-commodity flow problem
//!    ([`crate::relaxation`]).
//! 2. **Decompose** each flow's fractional solution into weighted candidate
//!    paths `Q_i(k)` per interval (Raghavan–Tompson,
//!    [`dcn_solver::decompose`]), and merge them across intervals with
//!    weights `w̄_P = sum_k w_P(k) * |I_k| / (d_i - r_i)`.
//! 3. **Round**: sample one routing path per flow, using `w̄_P` as the
//!    probability distribution.
//! 4. **Schedule**: inside every interval, every flow transmits at the
//!    aggregate density of the flows sharing its links, ordered by EDF; the
//!    per-link rate is then exactly `sum of the densities of the flows on
//!    the link`, and Theorem 4 shows every deadline is met.
//!
//! The expected energy is within `O(lambda^alpha (n^2 log D)^(alpha-1))` of
//! the optimum (Theorems 6–7). Because rounding does not enforce the link
//! capacity, the implementation re-samples a bounded number of times and
//! keeps the least-violating draw, as the paper suggests.

use crate::relaxation::{interval_relaxation_on, RelaxationSummary};
use crate::schedule::{FlowSchedule, Schedule};
use dcn_flow::{FlowId, FlowSet};
use dcn_power::{PowerFunction, RateProfile};
use dcn_solver::decompose::decompose_flow;
use dcn_solver::fmcf::FmcfSolverConfig;
use dcn_topology::{Network, Path};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::fmt;

/// Errors raised by [`RandomSchedule::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum DcfsrError {
    /// A flow has no routing path at all between its endpoints.
    Unroutable {
        /// The flow in question.
        flow: FlowId,
    },
}

impl fmt::Display for DcfsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcfsrError::Unroutable { flow } => {
                write!(f, "flow {flow} has no path between its endpoints")
            }
        }
    }
}

impl std::error::Error for DcfsrError {}

/// Configuration of [`RandomSchedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomScheduleConfig {
    /// Configuration of the per-interval Frank–Wolfe solver.
    pub fmcf: FmcfSolverConfig,
    /// How many independent rounding draws to try before settling for the
    /// least capacity-violating one.
    pub max_rounding_attempts: usize,
    /// Seed of the rounding randomness; the whole algorithm is deterministic
    /// for a fixed seed.
    pub seed: u64,
    /// Residual flow below which decomposition stops extracting paths.
    pub decompose_epsilon: f64,
}

impl Default for RandomScheduleConfig {
    fn default() -> Self {
        Self {
            fmcf: FmcfSolverConfig::default(),
            max_rounding_attempts: 25,
            seed: 0,
            decompose_epsilon: 1e-9,
        }
    }
}

/// A candidate routing path of one flow together with its rounded-merge
/// weight `w̄_P`.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePath {
    /// The path.
    pub path: Path,
    /// The merged weight (a probability after normalisation).
    pub weight: f64,
}

/// The result of running Random-Schedule.
#[derive(Debug, Clone)]
pub struct RandomScheduleOutcome {
    /// The produced schedule (one path and one piecewise-constant rate per
    /// flow).
    pub schedule: Schedule,
    /// The fractional lower bound `LB` of the instance (the Fig. 2
    /// normaliser).
    pub lower_bound: f64,
    /// Number of rounding draws actually performed.
    pub attempts: usize,
    /// Largest amount by which any link exceeds its capacity in the chosen
    /// draw (`0.0` when the schedule respects all capacities).
    pub capacity_excess: f64,
    /// The candidate path sets the rounding sampled from, indexed by flow.
    pub candidates: Vec<Vec<CandidatePath>>,
}

/// The Random-Schedule algorithm (paper Algorithm 2).
#[derive(Debug, Clone, Default)]
pub struct RandomSchedule {
    config: RandomScheduleConfig,
}

impl RandomSchedule {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: RandomScheduleConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RandomScheduleConfig {
        &self.config
    }

    /// Runs the full pipeline: relaxation, decomposition, rounding and
    /// scheduling, building all solver state from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`DcfsrError::Unroutable`] if some flow has no path in the
    /// network.
    #[deprecated(
        since = "0.2.0",
        note = "build a SolverContext and run the `dcfsr` algorithm (`Dcfsr::solve`)"
    )]
    pub fn run(
        &self,
        network: &Network,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<RandomScheduleOutcome, DcfsrError> {
        if flows.is_empty() {
            return Ok(RandomScheduleOutcome {
                schedule: Schedule::new(Vec::new(), (0.0, 0.0)),
                lower_bound: 0.0,
                attempts: 0,
                capacity_excess: 0.0,
                candidates: Vec::new(),
            });
        }
        let relaxation = interval_relaxation_on(
            &dcn_topology::GraphCsr::from_network(network),
            flows,
            power,
            &self.config.fmcf,
        );
        self.run_with_relaxation(network, flows, power, &relaxation)
    }

    /// Runs decomposition, rounding and scheduling on a precomputed
    /// relaxation (useful when the caller also needs the lower bound, as the
    /// benchmark harness does).
    ///
    /// # Errors
    ///
    /// Returns [`DcfsrError::Unroutable`] if some flow has no path in the
    /// network.
    pub fn run_with_relaxation(
        &self,
        network: &Network,
        flows: &FlowSet,
        power: &PowerFunction,
        relaxation: &RelaxationSummary,
    ) -> Result<RandomScheduleOutcome, DcfsrError> {
        self.run_with_relaxation_threads(network, flows, power, relaxation, 1)
    }

    /// [`RandomSchedule::run_with_relaxation`] with the per-interval path
    /// decomposition fanned out across `threads` pool workers (each
    /// interval's Raghavan–Tompson decompositions are independent; the
    /// weight merge and the rounding loop stay sequential, so the outcome
    /// is bit-identical at any thread count). This is the entry point the
    /// [`crate::Dcfsr`] algorithm's `solve` drives from the context's
    /// [`crate::SolverContext::parallelism`] knob.
    ///
    /// # Errors
    ///
    /// Returns [`DcfsrError::Unroutable`] if some flow has no path in the
    /// network.
    pub fn run_with_relaxation_threads(
        &self,
        network: &Network,
        flows: &FlowSet,
        power: &PowerFunction,
        relaxation: &RelaxationSummary,
        threads: usize,
    ) -> Result<RandomScheduleOutcome, DcfsrError> {
        let candidates = self.candidate_paths(network, flows, relaxation, threads)?;

        // Randomized rounding with capacity re-draws.
        let mut best: Option<(Schedule, f64)> = None;
        let mut attempts = 0;
        for attempt in 0..self.config.max_rounding_attempts.max(1) {
            attempts = attempt + 1;
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(attempt as u64));
            let chosen = sample_paths(&candidates, &mut rng);
            let schedule = build_schedule(flows, &chosen);
            let excess = schedule.max_capacity_excess(power);
            let better = match &best {
                None => true,
                Some((_, best_excess)) => excess < *best_excess,
            };
            if better {
                best = Some((schedule, excess));
            }
            if best.as_ref().map(|(_, e)| *e) == Some(0.0) {
                break;
            }
        }
        let (schedule, capacity_excess) = best.expect("at least one rounding attempt is made");

        Ok(RandomScheduleOutcome {
            schedule,
            lower_bound: relaxation.lower_bound,
            attempts,
            capacity_excess,
            candidates,
        })
    }

    /// Builds every flow's candidate path set `Q_i` with merged weights
    /// `w̄_P` (Algorithm 2, lines 4–7).
    ///
    /// The per-interval decompositions are independent and fan out across
    /// `threads` pool workers; the weight merge then walks the per-interval
    /// results in interval order, flow order, path order — the exact
    /// floating-point sequence of the sequential loop, so the candidate
    /// sets are bit-identical at any thread count.
    fn candidate_paths(
        &self,
        network: &Network,
        flows: &FlowSet,
        relaxation: &RelaxationSummary,
        threads: usize,
    ) -> Result<Vec<Vec<CandidatePath>>, DcfsrError> {
        let mut candidates: Vec<Vec<CandidatePath>> = vec![Vec::new(); flows.len()];

        let decomposed = crate::pool::run_indexed(relaxation.intervals.len(), threads, |k| {
            let iv = &relaxation.intervals[k];
            iv.flow_ids
                .iter()
                .enumerate()
                .map(|(ci, &flow_id)| {
                    let flow = flows.flow(flow_id);
                    decompose_flow(
                        network,
                        flow.src,
                        flow.dst,
                        iv.solution.commodity_flows(ci),
                        self.config.decompose_epsilon,
                    )
                })
                .collect::<Vec<_>>()
        });

        for (iv, interval_parts) in relaxation.intervals.iter().zip(decomposed) {
            let interval_share = iv.interval.length();
            for (&flow_id, parts) in iv.flow_ids.iter().zip(interval_parts) {
                let flow = flows.flow(flow_id);
                let density = flow.density();
                for part in parts {
                    // w_P(k): the fraction of the flow routed on this path
                    // in interval k; merged weight adds |I_k| / (d_i - r_i).
                    let fraction = part.weight / density;
                    let merged = fraction * interval_share / flow.span_length();
                    match candidates[flow_id].iter_mut().find(|c| c.path == part.path) {
                        Some(existing) => existing.weight += merged,
                        None => candidates[flow_id].push(CandidatePath {
                            path: part.path,
                            weight: merged,
                        }),
                    }
                }
            }
        }

        // Normalise; flows whose decomposition produced nothing (possible
        // only through numerical degeneration) fall back to a shortest path.
        for flow in flows.iter() {
            let entry = &mut candidates[flow.id];
            let total: f64 = entry.iter().map(|c| c.weight).sum();
            if entry.is_empty() || total <= 0.0 {
                let path = network
                    .shortest_path(flow.src, flow.dst)
                    .ok_or(DcfsrError::Unroutable { flow: flow.id })?;
                entry.clear();
                entry.push(CandidatePath { path, weight: 1.0 });
                continue;
            }
            for c in entry.iter_mut() {
                c.weight /= total;
            }
        }
        Ok(candidates)
    }
}

/// Samples one path per flow according to the candidate weights.
fn sample_paths(candidates: &[Vec<CandidatePath>], rng: &mut StdRng) -> Vec<Path> {
    candidates
        .iter()
        .map(|cands| {
            debug_assert!(!cands.is_empty());
            let draw: f64 = rng.gen();
            let mut acc = 0.0;
            for c in cands {
                acc += c.weight;
                if draw <= acc {
                    return c.path.clone();
                }
            }
            cands
                .last()
                .expect("candidate list is non-empty")
                .path
                .clone()
        })
        .collect()
}

/// Builds the schedule of Algorithm 2's last step: every flow transmits at
/// its density over its whole span along its chosen path, which makes every
/// link's rate in interval `I_k` exactly the sum of the densities of the
/// flows it carries (Theorem 4 then guarantees all deadlines are met).
fn build_schedule(flows: &FlowSet, chosen: &[Path]) -> Schedule {
    let horizon = flows.horizon();
    let flow_schedules = flows
        .iter()
        .map(|f| {
            FlowSchedule::uniform(
                f.id,
                chosen[f.id].clone(),
                RateProfile::constant(f.release, f.deadline, f.density()),
            )
        })
        .collect();
    Schedule::new(flow_schedules, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, Dcfsr, SolverContext};
    use dcn_flow::workload::UniformWorkload;
    use dcn_topology::builders;

    fn x2(capacity: f64) -> PowerFunction {
        PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
    }

    #[test]
    fn deadlines_and_volumes_are_always_met() {
        // Theorem 4: the produced schedule meets every deadline.
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        for seed in 0..3 {
            let flows = UniformWorkload::paper_defaults(30, seed)
                .generate(topo.hosts())
                .unwrap();
            let mut algo = Dcfsr::default();
            algo.set_seed(seed);
            let solution = algo.solve(&mut ctx, &flows, &power).unwrap();
            ctx.verify(solution.schedule.as_ref().unwrap(), &flows, &power)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn energy_is_at_least_the_lower_bound() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = UniformWorkload::paper_defaults(25, 7)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let solution = Dcfsr::default().solve(&mut ctx, &flows, &power).unwrap();
        let energy = solution.total_energy().unwrap();
        let lower_bound = solution.lower_bound.unwrap();
        assert!(
            energy >= lower_bound - 1e-6,
            "energy {energy} below the lower bound {lower_bound}"
        );
        assert!(lower_bound > 0.0);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = UniformWorkload::paper_defaults(20, 5)
            .generate(topo.hosts())
            .unwrap();
        let mut algo = Dcfsr::new(RandomScheduleConfig {
            seed: 99,
            ..Default::default()
        });
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let a = algo.solve(&mut ctx, &flows, &power).unwrap();
        let b = algo.solve(&mut ctx, &flows, &power).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.lower_bound, b.lower_bound);
    }

    #[test]
    fn candidate_weights_form_a_distribution() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = UniformWorkload::paper_defaults(15, 2)
            .generate(topo.hosts())
            .unwrap();
        let relaxation =
            interval_relaxation_on(&topo.csr(), &flows, &power, &FmcfSolverConfig::default());
        let outcome = RandomSchedule::default()
            .run_with_relaxation(&topo.network, &flows, &power, &relaxation)
            .unwrap();
        assert_eq!(outcome.candidates.len(), flows.len());
        for (flow, cands) in flows.iter().zip(&outcome.candidates) {
            assert!(!cands.is_empty());
            let total: f64 = cands.iter().map(|c| c.weight).sum();
            assert!(
                (total - 1.0).abs() < 1e-6,
                "weights of flow {} sum to {total}",
                flow.id
            );
            for c in cands {
                assert_eq!(c.path.source(), flow.src);
                assert_eq!(c.path.destination(), flow.dst);
                assert!(c.weight >= 0.0);
            }
        }
    }

    #[test]
    fn parallel_links_get_balanced_by_rounding() {
        // Many identical flows between two hosts joined by parallel links:
        // the relaxation splits them evenly, so rounding should use several
        // different links (with overwhelming probability over 16 flows).
        let topo = builders::parallel(4, 100.0);
        let power = x2(100.0);
        let flows =
            FlowSet::from_tuples((0..16).map(|_| (topo.source(), topo.sink(), 0.0, 10.0, 10.0)))
                .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let solution = Dcfsr::default().solve(&mut ctx, &flows, &power).unwrap();
        let schedule = solution.schedule.as_ref().unwrap();
        ctx.verify(schedule, &flows, &power).unwrap();
        let mut used: Vec<_> = schedule
            .flow_schedules()
            .iter()
            .map(|fs| fs.path.links()[0])
            .collect();
        used.sort();
        used.dedup();
        assert!(
            used.len() >= 2,
            "rounding placed all 16 flows on a single parallel link"
        );
    }

    #[test]
    fn empty_instance_is_handled_by_the_legacy_delegate() {
        // The deprecated one-shot entry keeps its historical semantics
        // (empty outcome); the context API rejects empty sets with a typed
        // error instead.
        let topo = builders::line(3);
        let flows = FlowSet::from_flows(vec![]).unwrap();
        #[allow(deprecated)]
        let outcome = RandomSchedule::default()
            .run(&topo.network, &flows, &x2(10.0))
            .unwrap();
        assert!(outcome.schedule.is_empty());
        assert_eq!(outcome.lower_bound, 0.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        assert_eq!(
            Dcfsr::default()
                .solve(&mut ctx, &flows, &x2(10.0))
                .unwrap_err(),
            crate::SolveError::EmptyFlowSet
        );
    }

    #[test]
    fn unroutable_flow_is_an_error() {
        let mut net = dcn_topology::Network::new();
        let a = net.add_node(dcn_topology::NodeKind::Host, "a");
        let b = net.add_node(dcn_topology::NodeKind::Host, "b");
        let c = net.add_node(dcn_topology::NodeKind::Host, "c");
        net.add_duplex_link(a, b, 10.0);
        // c is disconnected.
        let flows = FlowSet::from_tuples([(a, c, 0.0, 1.0, 1.0)]).unwrap();
        // The relaxation itself panics on unreachable commodities, so check
        // the error path through candidate_paths with an empty relaxation.
        let relaxation = RelaxationSummary {
            intervals: Vec::new(),
            lower_bound: 0.0,
        };
        let err = RandomSchedule::default()
            .run_with_relaxation(&net, &flows, &x2(10.0), &relaxation)
            .unwrap_err();
        assert_eq!(err, DcfsrError::Unroutable { flow: 0 });
    }

    use dcn_flow::FlowSet;
}
