//! The Yao–Demers–Shenker (YDS) optimal speed-scaling algorithm and the
//! EDF packing it relies on.
//!
//! YDS solves the following problem optimally: given jobs with release
//! times, deadlines and work requirements on a single speed-scalable
//! processor whose power is `mu * s^alpha` (`alpha > 1`), find the schedule
//! of minimum energy that meets every deadline. The algorithm repeatedly
//! finds the *critical interval* — the interval of maximum intensity
//! (total contained work divided by available time) — runs the jobs
//! contained in it at exactly that intensity using EDF, removes them, and
//! recurses on the remaining jobs and remaining available time.
//!
//! The paper's Most-Critical-First algorithm for DCFS (its Algorithm 1) is
//! this algorithm applied per *link* with virtual weights
//! `w'_i = w_i * |P_i|^(1/alpha)`; the core crate builds directly on the
//! primitives exported here.

use crate::TimeAvailability;
use dcn_power::PowerFunction;

/// A job for the single-processor speed-scaling problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Caller-chosen identifier (ids must be unique within one call).
    pub id: usize,
    /// Release time: the job cannot run earlier.
    pub release: f64,
    /// Deadline: the job must be finished by this time.
    pub deadline: f64,
    /// Amount of work (e.g. CPU cycles, or data volume).
    pub work: f64,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if the span is empty or the work is not positive and finite.
    pub fn new(id: usize, release: f64, deadline: f64, work: f64) -> Self {
        assert!(
            release.is_finite() && deadline.is_finite() && work.is_finite(),
            "job parameters must be finite"
        );
        assert!(
            deadline > release,
            "job {id}: deadline {deadline} <= release {release}"
        );
        assert!(work > 0.0, "job {id}: work must be positive, got {work}");
        Self {
            id,
            release,
            deadline,
            work,
        }
    }

    /// The density `work / (deadline - release)` of the job.
    pub fn density(&self) -> f64 {
        self.work / (self.deadline - self.release)
    }
}

/// Where and how fast a single job executes in a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct JobPlacement {
    /// The job's identifier.
    pub id: usize,
    /// The constant execution speed assigned to the job.
    pub speed: f64,
    /// The (disjoint, sorted) time windows in which the job executes.
    pub windows: Vec<(f64, f64)>,
}

impl JobPlacement {
    /// Total execution time across all windows.
    pub fn duration(&self) -> f64 {
        self.windows.iter().map(|&(s, e)| e - s).sum()
    }

    /// Work completed: `speed * duration`.
    pub fn work_done(&self) -> f64 {
        self.speed * self.duration()
    }

    /// The first instant at which the job runs.
    ///
    /// # Panics
    ///
    /// Panics if the placement has no windows.
    pub fn start_time(&self) -> f64 {
        self.windows.first().expect("placement has no windows").0
    }

    /// The instant at which the job finishes.
    ///
    /// # Panics
    ///
    /// Panics if the placement has no windows.
    pub fn finish_time(&self) -> f64 {
        self.windows.last().expect("placement has no windows").1
    }
}

/// The output of [`yds_schedule`]: one placement per input job.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct YdsSchedule {
    placements: Vec<JobPlacement>,
}

impl YdsSchedule {
    /// All placements, in the order the critical intervals were discovered.
    pub fn placements(&self) -> &[JobPlacement] {
        &self.placements
    }

    /// The placement of a specific job id, if the job was scheduled.
    pub fn placement(&self, id: usize) -> Option<&JobPlacement> {
        self.placements.iter().find(|p| p.id == id)
    }

    /// The energy of the schedule under a speed-scaling power function
    /// (only the dynamic term `mu * s^alpha` matters for YDS).
    pub fn energy(&self, power: &PowerFunction) -> f64 {
        self.placements
            .iter()
            .map(|p| power.dynamic_power(p.speed) * p.duration())
            .sum()
    }

    /// The largest speed used by any job.
    pub fn max_speed(&self) -> f64 {
        self.placements.iter().map(|p| p.speed).fold(0.0, f64::max)
    }

    /// Checks the schedule against the original jobs: every job completes
    /// its work inside its span and no two jobs overlap in time.
    pub fn validate(&self, jobs: &[Job]) -> Result<(), String> {
        for job in jobs {
            let p = self
                .placement(job.id)
                .ok_or_else(|| format!("job {} has no placement", job.id))?;
            if (p.work_done() - job.work).abs() > 1e-6 * job.work.max(1.0) {
                return Err(format!(
                    "job {}: work done {} differs from required {}",
                    job.id,
                    p.work_done(),
                    job.work
                ));
            }
            for &(s, e) in &p.windows {
                if s < job.release - 1e-9 || e > job.deadline + 1e-9 {
                    return Err(format!(
                        "job {}: window [{s}, {e}] outside span [{}, {}]",
                        job.id, job.release, job.deadline
                    ));
                }
            }
        }
        // Pairwise non-overlap (single processor).
        let mut all_windows: Vec<(f64, f64)> = self
            .placements
            .iter()
            .flat_map(|p| p.windows.iter().copied())
            .collect();
        all_windows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite windows"));
        for w in all_windows.windows(2) {
            if w[1].0 < w[0].1 - 1e-9 {
                return Err(format!(
                    "windows [{}, {}] and [{}, {}] overlap",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
        Ok(())
    }
}

/// Preemptive Earliest-Deadline-First packing of `jobs` at a common `speed`
/// into the available `slots` (disjoint, sorted time intervals).
///
/// Returns one placement per job with its execution windows. Jobs that
/// cannot be finished within the slots keep whatever windows they received
/// (callers that pass a feasible instance — as YDS always does — get
/// complete placements).
pub fn edf_schedule(jobs: &[Job], speed: f64, slots: &[(f64, f64)]) -> Vec<JobPlacement> {
    assert!(speed > 0.0, "EDF speed must be positive, got {speed}");
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.work).collect();
    let mut windows: Vec<Vec<(f64, f64)>> = vec![Vec::new(); jobs.len()];

    for &(slot_start, slot_end) in slots {
        let mut t = slot_start;
        while t < slot_end - 1e-12 {
            // Jobs released by time t and not finished.
            let mut candidate: Option<usize> = None;
            for (idx, job) in jobs.iter().enumerate() {
                if remaining[idx] > 1e-12 && job.release <= t + 1e-12 {
                    candidate = match candidate {
                        None => Some(idx),
                        Some(best) => {
                            if job.deadline < jobs[best].deadline {
                                Some(idx)
                            } else {
                                Some(best)
                            }
                        }
                    };
                }
            }
            match candidate {
                None => {
                    // Jump to the next release inside this slot, if any.
                    let next_release = jobs
                        .iter()
                        .enumerate()
                        .filter(|(idx, j)| remaining[*idx] > 1e-12 && j.release > t)
                        .map(|(_, j)| j.release)
                        .fold(f64::INFINITY, f64::min);
                    if next_release >= slot_end {
                        break;
                    }
                    t = next_release;
                }
                Some(idx) => {
                    let finish_at = t + remaining[idx] / speed;
                    // Run until the job finishes, a new job is released, or
                    // the slot ends — whichever comes first.
                    let next_release = jobs
                        .iter()
                        .enumerate()
                        .filter(|(other, j)| {
                            *other != idx && remaining[*other] > 1e-12 && j.release > t + 1e-12
                        })
                        .map(|(_, j)| j.release)
                        .fold(f64::INFINITY, f64::min);
                    let run_until = finish_at.min(next_release).min(slot_end);
                    if run_until <= t + 1e-15 {
                        break;
                    }
                    // Append or extend the last window.
                    match windows[idx].last_mut() {
                        Some(last) if (last.1 - t).abs() < 1e-12 => last.1 = run_until,
                        _ => windows[idx].push((t, run_until)),
                    }
                    remaining[idx] -= (run_until - t) * speed;
                    t = run_until;
                }
            }
        }
    }

    jobs.iter()
        .enumerate()
        .map(|(idx, job)| JobPlacement {
            id: job.id,
            speed,
            windows: windows[idx].clone(),
        })
        .collect()
}

/// The optimal single-processor speed-scaling schedule (YDS).
///
/// Returns a schedule in which every job runs at a constant speed, all
/// deadlines are met, and the total energy `sum mu * s^alpha * time` is
/// minimum among all feasible schedules (for any `alpha > 1`).
///
/// # Panics
///
/// Panics if two jobs share an id.
pub fn yds_schedule(jobs: &[Job]) -> YdsSchedule {
    {
        let mut ids: Vec<usize> = jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), jobs.len(), "job ids must be unique");
    }

    let mut remaining: Vec<Job> = jobs.to_vec();
    let mut avail = TimeAvailability::new();
    let mut placements = Vec::with_capacity(jobs.len());

    while !remaining.is_empty() {
        // Candidate interval endpoints: all releases and deadlines.
        let mut points: Vec<f64> = remaining
            .iter()
            .flat_map(|j| [j.release, j.deadline])
            .collect();
        points.sort_by(|a, b| a.partial_cmp(b).expect("finite job times"));
        points.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        // Find the interval of maximum intensity.
        let mut best: Option<(f64, f64, f64)> = None; // (intensity, a, b)
        for (ia, &a) in points.iter().enumerate() {
            for &b in &points[ia + 1..] {
                let work: f64 = remaining
                    .iter()
                    .filter(|j| j.release >= a - 1e-12 && j.deadline <= b + 1e-12)
                    .map(|j| j.work)
                    .sum();
                if work <= 0.0 {
                    continue;
                }
                let available = avail.available_between(a, b);
                let intensity = if available > 1e-12 {
                    work / available
                } else {
                    f64::INFINITY
                };
                let better = match best {
                    None => true,
                    Some((bi, ..)) => intensity > bi + 1e-15,
                };
                if better {
                    best = Some((intensity, a, b));
                }
            }
        }
        let (intensity, a, b) =
            best.expect("at least one job remains, so a candidate interval exists");
        debug_assert!(
            intensity.is_finite(),
            "critical interval has no available time; the instance degenerated"
        );

        // The flows/jobs of the critical interval.
        let (critical, rest): (Vec<Job>, Vec<Job>) = remaining
            .into_iter()
            .partition(|j| j.release >= a - 1e-12 && j.deadline <= b + 1e-12);
        remaining = rest;

        let slots = avail.available_subintervals(a, b);
        let placed = edf_schedule(&critical, intensity, &slots);
        placements.extend(placed);

        // The critical interval is fully consumed.
        for (s, e) in slots {
            avail.block(s, e);
        }
    }

    YdsSchedule { placements }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power(alpha: f64) -> PowerFunction {
        PowerFunction::speed_scaling_only(1.0, alpha, f64::MAX / 2.0)
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn single_job_runs_at_its_density() {
        let jobs = [Job::new(0, 2.0, 6.0, 8.0)];
        let s = yds_schedule(&jobs);
        s.validate(&jobs).unwrap();
        let p = s.placement(0).unwrap();
        assert!(close(p.speed, 2.0));
        assert_eq!(p.windows, vec![(2.0, 6.0)]);
    }

    #[test]
    fn two_disjoint_jobs_keep_their_own_densities() {
        let jobs = [Job::new(0, 0.0, 2.0, 4.0), Job::new(1, 5.0, 10.0, 5.0)];
        let s = yds_schedule(&jobs);
        s.validate(&jobs).unwrap();
        assert!(close(s.placement(0).unwrap().speed, 2.0));
        assert!(close(s.placement(1).unwrap().speed, 1.0));
    }

    #[test]
    fn nested_jobs_share_the_critical_interval_speed() {
        // Classic YDS example: a dense inner job forces a high speed only
        // inside its own window.
        let jobs = [
            Job::new(0, 0.0, 10.0, 10.0), // outer, density 1
            Job::new(1, 4.0, 6.0, 6.0),   // inner, density 3
        ];
        let s = yds_schedule(&jobs);
        s.validate(&jobs).unwrap();
        // Critical interval is [4,6] with intensity 3; job 0 then runs in
        // the remaining 8 time units at speed 10/8.
        assert!(close(s.placement(1).unwrap().speed, 3.0));
        assert!(close(s.placement(0).unwrap().speed, 1.25));
    }

    #[test]
    fn paper_example1_yds_instance() {
        // Example 1 of the paper, translated to SS-SP: works 6*sqrt(2) and 8,
        // spans [2,4] and [1,3]. Both jobs run at speed (8 + 6 sqrt 2)/3.
        let w1 = 6.0 * 2f64.sqrt();
        let jobs = [Job::new(0, 2.0, 4.0, w1), Job::new(1, 1.0, 3.0, 8.0)];
        let s = yds_schedule(&jobs);
        s.validate(&jobs).unwrap();
        let expected = (8.0 + 6.0 * 2f64.sqrt()) / 3.0;
        assert!(close(s.placement(0).unwrap().speed, expected));
        assert!(close(s.placement(1).unwrap().speed, expected));
        // EDF runs job 1 (deadline 3) before job 0 (deadline 4).
        assert!(
            s.placement(1).unwrap().finish_time() <= s.placement(0).unwrap().start_time() + 1e-9
        );
    }

    #[test]
    fn energy_matches_closed_form_for_single_job() {
        let jobs = [Job::new(0, 0.0, 4.0, 8.0)];
        let s = yds_schedule(&jobs);
        // speed 2 for 4 time units at alpha=3: 2^3 * 4 = 32.
        assert!(close(s.energy(&power(3.0)), 32.0));
    }

    #[test]
    fn relaxing_deadlines_never_increases_energy() {
        // The optimum of a relaxed instance (later deadlines) can only be
        // cheaper or equal.
        let tight = [
            Job::new(0, 0.0, 4.0, 2.0),
            Job::new(1, 1.0, 6.0, 3.0),
            Job::new(2, 2.0, 8.0, 2.0),
        ];
        let relaxed: Vec<Job> = tight
            .iter()
            .map(|j| Job::new(j.id, j.release, j.deadline + 4.0, j.work))
            .collect();
        let p = power(2.0);
        let e_tight = yds_schedule(&tight).energy(&p);
        let e_relaxed = yds_schedule(&relaxed).energy(&p);
        assert!(e_relaxed <= e_tight + 1e-9);
    }

    #[test]
    fn identical_jobs_share_speed_evenly() {
        let jobs: Vec<Job> = (0..4).map(|i| Job::new(i, 0.0, 8.0, 2.0)).collect();
        let s = yds_schedule(&jobs);
        s.validate(&jobs).unwrap();
        for p in s.placements() {
            assert!(close(p.speed, 1.0));
        }
        assert!(close(s.max_speed(), 1.0));
    }

    #[test]
    fn staggered_releases_respected_by_edf() {
        let jobs = [Job::new(0, 0.0, 10.0, 2.0), Job::new(1, 5.0, 10.0, 2.0)];
        let s = yds_schedule(&jobs);
        s.validate(&jobs).unwrap();
        // Job 1 cannot start before its release at t=5.
        assert!(s.placement(1).unwrap().start_time() >= 5.0 - 1e-9);
    }

    #[test]
    fn edf_schedule_fills_slots_in_order() {
        let jobs = [Job::new(0, 0.0, 10.0, 4.0), Job::new(1, 0.0, 5.0, 2.0)];
        let placements = edf_schedule(&jobs, 2.0, &[(0.0, 2.0), (4.0, 6.0)]);
        // Job 1 has the earlier deadline: runs first in [0,1].
        let p1 = placements.iter().find(|p| p.id == 1).unwrap();
        assert_eq!(p1.windows, vec![(0.0, 1.0)]);
        let p0 = placements.iter().find(|p| p.id == 0).unwrap();
        assert!(close(p0.work_done(), 4.0));
        assert_eq!(p0.windows, vec![(1.0, 2.0), (4.0, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_ids_rejected() {
        let jobs = [Job::new(0, 0.0, 1.0, 1.0), Job::new(0, 0.0, 2.0, 1.0)];
        yds_schedule(&jobs);
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn empty_span_job_rejected() {
        Job::new(0, 2.0, 2.0, 1.0);
    }

    #[test]
    fn validate_detects_missing_job() {
        let jobs = [Job::new(0, 0.0, 1.0, 1.0), Job::new(1, 0.0, 1.0, 1.0)];
        let schedule = yds_schedule(&jobs[..1]);
        assert!(schedule.validate(&jobs).is_err());
    }
}
