//! Fractional multi-commodity flow with convex separable link costs,
//! solved by the Frank–Wolfe (conditional gradient) method.
//!
//! The Random-Schedule algorithm relaxes DCFSR into one fractional
//! multi-commodity flow problem per interval `I_k`: every flow active in the
//! interval must route its density `D_i` from source to destination, flows
//! may be split across paths arbitrarily, and the objective is the sum of a
//! convex function of the load over all links (paper, Definition 4). This
//! module solves exactly that problem.
//!
//! Frank–Wolfe is the textbook method for convex-cost multi-commodity flow
//! (it is the classical "traffic assignment" algorithm): each iteration
//! routes every commodity entirely on its cheapest path under the *marginal*
//! link costs at the current loads, and the new solution is a convex
//! combination of the old solution and that all-or-nothing assignment, with
//! the mixing coefficient chosen by exact (golden-section) line search on
//! the convex objective.

use dcn_power::PowerFunction;
use dcn_topology::{dijkstra, LinkId, Network, NodeId};

/// One commodity of the multi-commodity flow problem: `demand` units of
/// traffic per unit time from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commodity {
    /// Caller-chosen identifier (typically the flow id).
    pub id: usize,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Traffic demand (e.g. the flow density `D_i`).
    pub demand: f64,
}

/// A convex, separable per-link cost: the objective is
/// `sum over links of cost(link, load_on_link)`.
pub trait FlowCost {
    /// The cost of pushing `load` units of traffic through `link`.
    fn cost(&self, link: LinkId, load: f64) -> f64;

    /// The derivative of [`FlowCost::cost`] with respect to the load.
    fn marginal(&self, link: LinkId, load: f64) -> f64;
}

/// The power-model cost used throughout the reproduction:
/// `cost(x) = mu * x^alpha + (sigma / C) * x`.
///
/// * With `sigma = 0` this is exactly the paper's speed-scaling cost
///   `g(x) = mu * x^alpha` used by the DCFS analysis and the Fig. 2 setup.
/// * With `sigma > 0` the linear term charges each unit of traffic the
///   idle-power share it would occupy on a fully-loaded link. For any
///   feasible (integral) schedule the per-interval cost under this function
///   is a lower bound on its true energy share, so the fractional optimum
///   under this cost is a valid lower bound for DCFSR (used as the `LB`
///   normaliser of Fig. 2).
#[derive(Debug, Clone, Copy)]
pub struct PowerFlowCost {
    power: PowerFunction,
}

impl PowerFlowCost {
    /// Creates the cost from a power function.
    pub fn new(power: PowerFunction) -> Self {
        Self { power }
    }

    /// The underlying power function.
    pub fn power(&self) -> &PowerFunction {
        &self.power
    }
}

impl FlowCost for PowerFlowCost {
    fn cost(&self, _link: LinkId, load: f64) -> f64 {
        if load <= 0.0 {
            return 0.0;
        }
        self.power.dynamic_power(load) + self.power.sigma() * load / self.power.capacity()
    }

    fn marginal(&self, _link: LinkId, load: f64) -> f64 {
        self.power.marginal_power(load.max(0.0)) + self.power.sigma() / self.power.capacity()
    }
}

/// Configuration of the Frank–Wolfe solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmcfSolverConfig {
    /// Maximum number of Frank–Wolfe iterations.
    pub max_iterations: usize,
    /// Relative improvement below which the solver declares convergence.
    pub tolerance: f64,
    /// Optional per-link capacity; loads above it are discouraged by a
    /// quadratic penalty (the relaxation's `x_e <= C` constraint).
    pub capacity: Option<f64>,
    /// Weight of the quadratic capacity penalty.
    pub capacity_penalty: f64,
    /// Number of golden-section iterations in the line search.
    pub line_search_steps: usize,
}

impl Default for FmcfSolverConfig {
    fn default() -> Self {
        Self {
            max_iterations: 60,
            tolerance: 1e-4,
            capacity: None,
            capacity_penalty: 1e3,
            line_search_steps: 40,
        }
    }
}

/// A fractional multi-commodity flow problem on a network.
#[derive(Debug, Clone)]
pub struct FmcfProblem<'a> {
    network: &'a Network,
    commodities: Vec<Commodity>,
}

/// The fractional solution: per-commodity, per-link flow values.
#[derive(Debug, Clone, PartialEq)]
pub struct FmcfSolution {
    /// `flows[c][e]` = amount of commodity `c`'s demand routed over link `e`.
    commodity_flows: Vec<Vec<f64>>,
    /// Number of Frank–Wolfe iterations performed.
    pub iterations: usize,
    /// Whether the relative-improvement stopping criterion was reached.
    pub converged: bool,
}

impl<'a> FmcfProblem<'a> {
    /// Creates a problem instance.
    ///
    /// # Panics
    ///
    /// Panics if any commodity has a non-positive demand or equal endpoints.
    pub fn new(network: &'a Network, commodities: Vec<Commodity>) -> Self {
        for c in &commodities {
            assert!(c.demand > 0.0, "commodity {} has non-positive demand", c.id);
            assert!(c.src != c.dst, "commodity {} has equal endpoints", c.id);
        }
        Self {
            network,
            commodities,
        }
    }

    /// The commodities of the problem.
    pub fn commodities(&self) -> &[Commodity] {
        &self.commodities
    }

    fn penalty(&self, load: f64, config: &FmcfSolverConfig) -> f64 {
        match config.capacity {
            Some(cap) if load > cap => config.capacity_penalty * (load - cap).powi(2),
            _ => 0.0,
        }
    }

    fn penalty_marginal(&self, load: f64, config: &FmcfSolverConfig) -> f64 {
        match config.capacity {
            Some(cap) if load > cap => 2.0 * config.capacity_penalty * (load - cap),
            _ => 0.0,
        }
    }

    fn objective(&self, loads: &[f64], cost: &impl FlowCost, config: &FmcfSolverConfig) -> f64 {
        loads
            .iter()
            .enumerate()
            .map(|(e, &x)| cost.cost(LinkId(e), x) + self.penalty(x, config))
            .sum()
    }

    /// Routes every commodity on its cheapest path under the given per-link
    /// weights, returning the all-or-nothing assignment. Returns `None` if
    /// some commodity has no path at all.
    fn all_or_nothing(&self, weights: &[f64]) -> Option<Vec<Vec<f64>>> {
        let m = self.network.link_count();
        let mut assignment = vec![vec![0.0; m]; self.commodities.len()];
        for (ci, c) in self.commodities.iter().enumerate() {
            let path = dijkstra(self.network, c.src, c.dst, |l| weights[l.index()])?;
            for &l in path.links() {
                assignment[ci][l.index()] = c.demand;
            }
        }
        Some(assignment)
    }

    /// Solves the problem with Frank–Wolfe under the given convex cost.
    ///
    /// # Panics
    ///
    /// Panics if some commodity's destination is unreachable from its
    /// source.
    pub fn solve(&self, cost: &impl FlowCost, config: &FmcfSolverConfig) -> FmcfSolution {
        let m = self.network.link_count();
        let n = self.commodities.len();
        if n == 0 {
            return FmcfSolution {
                commodity_flows: Vec::new(),
                iterations: 0,
                converged: true,
            };
        }

        // Initial feasible point: hop-count shortest paths.
        let hop_weights = vec![1.0; m];
        let mut flows = self
            .all_or_nothing(&hop_weights)
            .expect("every commodity must have a path in the network");

        let mut loads = column_sums(&flows, m);
        let mut objective = self.objective(&loads, cost, config);
        let mut converged = false;
        let mut iterations = 0;

        for it in 0..config.max_iterations {
            iterations = it + 1;
            // Marginal costs at the current loads.
            let weights: Vec<f64> = loads
                .iter()
                .enumerate()
                .map(|(e, &x)| {
                    (cost.marginal(LinkId(e), x) + self.penalty_marginal(x, config)).max(0.0)
                })
                .collect();
            let target = self
                .all_or_nothing(&weights)
                .expect("every commodity must have a path in the network");
            let target_loads = column_sums(&target, m);

            // Golden-section line search on gamma in [0, 1].
            let eval = |gamma: f64| {
                let blended: Vec<f64> = loads
                    .iter()
                    .zip(&target_loads)
                    .map(|(&a, &b)| (1.0 - gamma) * a + gamma * b)
                    .collect();
                self.objective(&blended, cost, config)
            };
            let gamma = golden_section_min(eval, 0.0, 1.0, config.line_search_steps);
            if gamma <= 1e-12 {
                converged = true;
                break;
            }

            for (fc, tc) in flows.iter_mut().zip(&target) {
                for (fe, te) in fc.iter_mut().zip(tc) {
                    *fe = (1.0 - gamma) * *fe + gamma * *te;
                }
            }
            loads = column_sums(&flows, m);
            let new_objective = self.objective(&loads, cost, config);
            let improvement = (objective - new_objective) / objective.abs().max(1e-12);
            objective = new_objective;
            if improvement.abs() < config.tolerance {
                converged = true;
                break;
            }
        }

        // Clean tiny numerical residue so that path decomposition terminates.
        for fc in &mut flows {
            for fe in fc.iter_mut() {
                if *fe < 1e-12 {
                    *fe = 0.0;
                }
            }
        }

        FmcfSolution {
            commodity_flows: flows,
            iterations,
            converged,
        }
    }
}

impl FmcfSolution {
    /// Number of commodities in the solution.
    pub fn commodity_count(&self) -> usize {
        self.commodity_flows.len()
    }

    /// The flow of commodity index `c` (position in the problem's commodity
    /// list) on `link`.
    pub fn commodity_flow(&self, c: usize, link: LinkId) -> f64 {
        self.commodity_flows[c][link.index()]
    }

    /// The full per-link flow vector of commodity index `c`.
    pub fn commodity_flows(&self, c: usize) -> &[f64] {
        &self.commodity_flows[c]
    }

    /// The aggregate load on `link` over all commodities.
    pub fn edge_load(&self, link: LinkId) -> f64 {
        self.commodity_flows.iter().map(|f| f[link.index()]).sum()
    }

    /// Aggregate loads on all links.
    pub fn total_loads(&self) -> Vec<f64> {
        if self.commodity_flows.is_empty() {
            return Vec::new();
        }
        column_sums(&self.commodity_flows, self.commodity_flows[0].len())
    }

    /// The objective value under a cost function (no capacity penalty).
    pub fn total_cost(&self, cost: &impl FlowCost) -> f64 {
        self.total_loads()
            .iter()
            .enumerate()
            .map(|(e, &x)| cost.cost(LinkId(e), x))
            .sum()
    }

    /// Net out-flow minus in-flow of commodity `c` at `node` — used to check
    /// flow conservation.
    pub fn net_outflow(&self, network: &Network, c: usize, node: NodeId) -> f64 {
        let outgoing: f64 = network
            .out_links(node)
            .iter()
            .map(|&l| self.commodity_flow(c, l))
            .sum();
        let incoming: f64 = network
            .in_links(node)
            .iter()
            .map(|&l| self.commodity_flow(c, l))
            .sum();
        outgoing - incoming
    }
}

fn column_sums(rows: &[Vec<f64>], m: usize) -> Vec<f64> {
    let mut sums = vec![0.0; m];
    for row in rows {
        for (s, &v) in sums.iter_mut().zip(row) {
            *s += v;
        }
    }
    sums
}

/// Minimises a unimodal function on `[lo, hi]` by golden-section search.
fn golden_section_min(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, steps: usize) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..steps {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    // Also consider the endpoints explicitly; the objective may be monotone.
    let mid = 0.5 * (a + b);
    let candidates = [lo, mid, hi];
    let mut best = candidates[0];
    let mut best_val = f(best);
    for &x in &candidates[1..] {
        let v = f(x);
        if v < best_val {
            best_val = v;
            best = x;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::builders;

    fn quadratic_cost() -> PowerFlowCost {
        PowerFlowCost::new(PowerFunction::speed_scaling_only(1.0, 2.0, 1e9))
    }

    fn tight_config() -> FmcfSolverConfig {
        FmcfSolverConfig {
            max_iterations: 400,
            tolerance: 1e-7,
            ..Default::default()
        }
    }

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let min = golden_section_min(|x| (x - 0.3).powi(2), 0.0, 1.0, 60);
        assert!((min - 0.3).abs() < 1e-6);
        // Monotone decreasing function: minimum at the right endpoint.
        let min = golden_section_min(|x| -x, 0.0, 1.0, 60);
        assert!((min - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_commodity_splits_evenly_over_parallel_links() {
        // With cost x^2, routing demand d over k identical parallel links is
        // optimal when split evenly: cost k * (d/k)^2 = d^2 / k.
        let t = builders::parallel(4, 100.0);
        let problem = FmcfProblem::new(
            &t.network,
            vec![Commodity {
                id: 0,
                src: t.source(),
                dst: t.sink(),
                demand: 8.0,
            }],
        );
        let sol = problem.solve(&quadratic_cost(), &tight_config());
        let cost = sol.total_cost(&quadratic_cost());
        assert!(
            close(cost, 8.0 * 8.0 / 4.0, 0.02),
            "cost {cost} should approach the even split optimum 16"
        );
        // Each forward link should carry roughly 2 units.
        let mut carried = 0.0;
        for l in t.network.find_links(t.source(), t.sink()) {
            let x = sol.edge_load(l);
            assert!(x < 3.0, "link load {x} too concentrated");
            carried += x;
        }
        assert!(close(carried, 8.0, 1e-6));
    }

    #[test]
    fn flow_conservation_holds_at_every_node() {
        let t = builders::fat_tree(4);
        let hosts = t.hosts();
        let commodities = vec![
            Commodity {
                id: 0,
                src: hosts[0],
                dst: hosts[10],
                demand: 3.0,
            },
            Commodity {
                id: 1,
                src: hosts[3],
                dst: hosts[12],
                demand: 1.5,
            },
            Commodity {
                id: 2,
                src: hosts[5],
                dst: hosts[1],
                demand: 2.0,
            },
        ];
        let problem = FmcfProblem::new(&t.network, commodities.clone());
        let sol = problem.solve(&quadratic_cost(), &tight_config());
        for (ci, c) in commodities.iter().enumerate() {
            for node in t.network.nodes() {
                let net = sol.net_outflow(&t.network, ci, node.id);
                let expected = if node.id == c.src {
                    c.demand
                } else if node.id == c.dst {
                    -c.demand
                } else {
                    0.0
                };
                assert!(
                    (net - expected).abs() < 1e-6,
                    "commodity {ci} violates conservation at {}: {net} vs {expected}",
                    node.id
                );
            }
        }
    }

    #[test]
    fn two_commodities_avoid_each_other_on_diamond() {
        // Two commodities between the same endpoints over two disjoint
        // 2-hop routes: the optimum sends them on different routes.
        let t = builders::parallel(2, 100.0);
        let problem = FmcfProblem::new(
            &t.network,
            vec![
                Commodity {
                    id: 0,
                    src: t.source(),
                    dst: t.sink(),
                    demand: 2.0,
                },
                Commodity {
                    id: 1,
                    src: t.source(),
                    dst: t.sink(),
                    demand: 2.0,
                },
            ],
        );
        let sol = problem.solve(&quadratic_cost(), &tight_config());
        // Total forward load 4 split over 2 links: 2 each, cost 8 (vs 16 if
        // they shared one link).
        let cost = sol.total_cost(&quadratic_cost());
        assert!(close(cost, 8.0, 0.02), "cost {cost} should approach 8");
    }

    #[test]
    fn fractional_cost_is_below_any_single_path_cost() {
        // The relaxation must lower-bound the best single-path routing.
        let t = builders::parallel(3, 100.0);
        let demand = 6.0;
        let problem = FmcfProblem::new(
            &t.network,
            vec![Commodity {
                id: 0,
                src: t.source(),
                dst: t.sink(),
                demand,
            }],
        );
        let cost_fn = quadratic_cost();
        let sol = problem.solve(&cost_fn, &tight_config());
        let single_path_cost = demand * demand; // all on one link
        assert!(sol.total_cost(&cost_fn) <= single_path_cost + 1e-6);
    }

    #[test]
    fn capacity_penalty_spreads_load() {
        let t = builders::parallel(2, 2.0);
        let problem = FmcfProblem::new(
            &t.network,
            vec![Commodity {
                id: 0,
                src: t.source(),
                dst: t.sink(),
                demand: 4.0,
            }],
        );
        // Nearly linear cost => without capacities a single path would be fine.
        let cost = PowerFlowCost::new(PowerFunction::speed_scaling_only(1.0, 1.01, 10.0));
        let config = FmcfSolverConfig {
            capacity: Some(2.0),
            ..Default::default()
        };
        let sol = problem.solve(&cost, &config);
        for l in t.network.find_links(t.source(), t.sink()) {
            assert!(
                sol.edge_load(l) <= 2.0 + 0.05,
                "load {} exceeds capacity",
                sol.edge_load(l)
            );
        }
    }

    #[test]
    fn empty_problem_solves_trivially() {
        let t = builders::line(2);
        let problem = FmcfProblem::new(&t.network, vec![]);
        let sol = problem.solve(&quadratic_cost(), &tight_config());
        assert!(sol.converged);
        assert_eq!(sol.commodity_count(), 0);
    }

    #[test]
    #[should_panic(expected = "non-positive demand")]
    fn zero_demand_rejected() {
        let t = builders::line(2);
        FmcfProblem::new(
            &t.network,
            vec![Commodity {
                id: 0,
                src: t.hosts()[0],
                dst: t.hosts()[1],
                demand: 0.0,
            }],
        );
    }

    #[test]
    fn power_flow_cost_includes_idle_share() {
        let f = PowerFunction::new(10.0, 1.0, 2.0, 5.0).unwrap();
        let cost = PowerFlowCost::new(f);
        // cost(x) = x^2 + (10/5) x = x^2 + 2x
        assert!(close(cost.cost(LinkId(0), 3.0), 9.0 + 6.0, 1e-12));
        assert!(close(cost.marginal(LinkId(0), 3.0), 6.0 + 2.0, 1e-12));
        assert_eq!(cost.cost(LinkId(0), 0.0), 0.0);
    }
}
