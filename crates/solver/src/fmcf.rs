//! Fractional multi-commodity flow with convex separable link costs,
//! solved by the Frank–Wolfe (conditional gradient) method.
//!
//! The Random-Schedule algorithm relaxes DCFSR into one fractional
//! multi-commodity flow problem per interval `I_k`: every flow active in the
//! interval must route its density `D_i` from source to destination, flows
//! may be split across paths arbitrarily, and the objective is the sum of a
//! convex function of the load over all links (paper, Definition 4). This
//! module solves exactly that problem.
//!
//! Frank–Wolfe is the textbook method for convex-cost multi-commodity flow
//! (it is the classical "traffic assignment" algorithm): each iteration
//! routes every commodity entirely on its cheapest path under the *marginal*
//! link costs at the current loads, and the new solution is a convex
//! combination of the old solution and that all-or-nothing assignment, with
//! the mixing coefficient chosen by exact (golden-section) line search on
//! the convex objective.
//!
//! # Hot-path layout
//!
//! The solver runs on the flat [`GraphCsr`] view and keeps every
//! per-iteration buffer in a reusable [`FmcfScratch`]:
//!
//! * the all-or-nothing step groups commodities by source and runs **one**
//!   multi-target Dijkstra per distinct source (not per commodity) through
//!   the arena-reuse [`ShortestPathEngine`];
//! * chosen paths are stored as spans into one shared link buffer, and the
//!   per-commodity flow matrix is a single flat `n x m` array, so blending
//!   and load accumulation are sequential passes;
//! * after the first iteration has warmed the arenas up, a Frank–Wolfe
//!   iteration performs **zero heap allocations**.
//!
//! Callers solving many problems on one network (the per-interval
//! relaxation) should build one [`GraphCsr`], construct problems with
//! [`FmcfProblem::with_graph`] and pass one scratch to
//! [`FmcfProblem::solve_with`]; [`FmcfProblem::new`] and
//! [`FmcfProblem::solve`] remain as one-shot conveniences.

use dcn_power::PowerFunction;
use dcn_topology::{GraphCsr, LinkId, Network, NodeId, ShortestPathEngine};

/// One commodity of the multi-commodity flow problem: `demand` units of
/// traffic per unit time from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commodity {
    /// Caller-chosen identifier (typically the flow id).
    pub id: usize,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Traffic demand (e.g. the flow density `D_i`).
    pub demand: f64,
}

/// A convex, separable per-link cost: the objective is
/// `sum over links of cost(link, load_on_link)`.
pub trait FlowCost {
    /// The cost of pushing `load` units of traffic through `link`.
    fn cost(&self, link: LinkId, load: f64) -> f64;

    /// The derivative of [`FlowCost::cost`] with respect to the load.
    fn marginal(&self, link: LinkId, load: f64) -> f64;

    /// Returns `true` when `cost(link, 0.0) == 0.0` for **every** link.
    ///
    /// When it holds, the Frank–Wolfe solver confines its objective and
    /// blending passes to the links actually touched by some chosen path
    /// (unloaded links contribute exactly `+0.0`, so skipping them is
    /// bit-for-bit neutral). The conservative default keeps the dense
    /// full-graph passes.
    fn zero_load_is_free(&self) -> bool {
        false
    }
}

/// The power-model cost used throughout the reproduction:
/// `cost(x) = mu * x^alpha + (sigma / C) * x`.
///
/// * With `sigma = 0` this is exactly the paper's speed-scaling cost
///   `g(x) = mu * x^alpha` used by the DCFS analysis and the Fig. 2 setup.
/// * With `sigma > 0` the linear term charges each unit of traffic the
///   idle-power share it would occupy on a fully-loaded link. For any
///   feasible (integral) schedule the per-interval cost under this function
///   is a lower bound on its true energy share, so the fractional optimum
///   under this cost is a valid lower bound for DCFSR (used as the `LB`
///   normaliser of Fig. 2).
#[derive(Debug, Clone, Copy)]
pub struct PowerFlowCost {
    power: PowerFunction,
}

impl PowerFlowCost {
    /// Creates the cost from a power function.
    pub fn new(power: PowerFunction) -> Self {
        Self { power }
    }

    /// The underlying power function.
    pub fn power(&self) -> &PowerFunction {
        &self.power
    }
}

impl FlowCost for PowerFlowCost {
    fn cost(&self, _link: LinkId, load: f64) -> f64 {
        if load <= 0.0 {
            return 0.0;
        }
        self.power.dynamic_power(load) + self.power.sigma() * load / self.power.capacity()
    }

    fn marginal(&self, _link: LinkId, load: f64) -> f64 {
        self.power.marginal_power(load.max(0.0)) + self.power.sigma() / self.power.capacity()
    }

    fn zero_load_is_free(&self) -> bool {
        true
    }
}

/// Configuration of the Frank–Wolfe solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmcfSolverConfig {
    /// Maximum number of Frank–Wolfe iterations.
    pub max_iterations: usize,
    /// Relative improvement below which the solver declares convergence.
    pub tolerance: f64,
    /// Optional per-link capacity; loads above it are discouraged by a
    /// quadratic penalty (the relaxation's `x_e <= C` constraint).
    pub capacity: Option<f64>,
    /// Weight of the quadratic capacity penalty.
    pub capacity_penalty: f64,
    /// Number of golden-section iterations in the line search.
    pub line_search_steps: usize,
}

impl Default for FmcfSolverConfig {
    fn default() -> Self {
        Self {
            max_iterations: 60,
            tolerance: 1e-4,
            capacity: None,
            capacity_penalty: 1e3,
            line_search_steps: 40,
        }
    }
}

/// The graph a problem runs on: borrowed from the caller (the amortised
/// path) or built once from a `Network` (the one-shot convenience path).
#[derive(Debug, Clone)]
enum GraphRef<'a> {
    Owned(Box<GraphCsr>),
    Borrowed(&'a GraphCsr),
}

impl GraphRef<'_> {
    fn get(&self) -> &GraphCsr {
        match self {
            GraphRef::Owned(g) => g,
            GraphRef::Borrowed(g) => g,
        }
    }
}

/// A fractional multi-commodity flow problem on a network.
#[derive(Debug, Clone)]
pub struct FmcfProblem<'a> {
    graph: GraphRef<'a>,
    commodities: Vec<Commodity>,
}

/// A converged solution cached by a warm-start-enabled scratch, together
/// with the fingerprint of the problem that produced it.
#[derive(Debug, Clone)]
struct WarmEntry {
    /// Per-commodity `(id, src, dst, demand bits)` of the cached problem.
    keys: Vec<(usize, usize, usize, u64)>,
    /// The converged flow matrix (`keys.len() x link_count`, row-major).
    flows: Vec<f64>,
    /// The converged aggregate loads.
    loads: Vec<f64>,
    /// Row stride of `flows`.
    link_count: usize,
    /// Epoch of the graph the cached solve ran on. Epochs are globally
    /// unique and bumped on every topology mutation, so this pins the
    /// cache to one graph *instance and state* — a recycled allocation
    /// hosting a same-size graph, or an in-place link failure, can never
    /// replay a stale solution.
    graph_epoch: u64,
    /// Iteration count of the cached solve.
    iterations: usize,
    /// Convergence flag of the cached solve.
    converged: bool,
    /// Links with nonzero load in the cached solution, ascending.
    active: Vec<LinkId>,
    /// Bit-pattern fingerprint of the solver configuration.
    config_bits: [u64; 5],
    /// Bit-pattern probe of the cost function (see [`cost_fingerprint`]).
    cost_bits: [u64; 3],
}

/// Reusable solver state: the shortest-path engine arenas and every
/// per-iteration buffer. One scratch can (and should) be shared across the
/// many [`FmcfProblem::solve_with`] calls of an interval sweep; it grows to
/// the largest problem seen and allocates nothing afterwards.
///
/// # Warm starts
///
/// With [`FmcfScratch::set_warm_start`] enabled the scratch additionally
/// caches the last converged solution. A re-solve of the *identical*
/// problem (same commodities, demands, graph size, configuration and cost
/// fingerprint, and no [dirty links](FmcfScratch::mark_dirty_links)
/// touching the cached flows) returns the cached solution bit-for-bit
/// without iterating. Otherwise commodities carried over from the cached
/// problem whose flows avoid every dirty link are *seeded* from their
/// previous rows (scaled to the new demand) instead of hop-count paths, so
/// Frank–Wolfe starts near the old optimum and converges in fewer
/// iterations; freshly arrived or dirty-path commodities are re-routed
/// from scratch. Warm starts are off by default: the cold path is
/// bit-for-bit identical to a fresh scratch.
#[derive(Debug, Clone, Default)]
pub struct FmcfScratch {
    engine: ShortestPathEngine,
    /// Per-link weights of the current all-or-nothing step.
    weights: Vec<f64>,
    /// Aggregate loads of the all-or-nothing assignment.
    target_loads: Vec<f64>,
    /// Line-search evaluation buffer.
    blended: Vec<f64>,
    /// Commodity indices grouped by source node (sorted by `(src, index)`).
    order: Vec<usize>,
    /// Concatenated link sequences of the chosen all-or-nothing paths.
    path_links: Vec<LinkId>,
    /// Per-commodity `(start, len)` span into `path_links`.
    path_spans: Vec<(usize, usize)>,
    /// Destination batch of the current source group.
    targets: Vec<NodeId>,
    /// Links touched by any chosen path so far, sorted ascending; the
    /// objective/blending passes are confined to these when the cost is
    /// [`FlowCost::zero_load_is_free`] (all other loads are exactly zero).
    active: Vec<LinkId>,
    /// Membership mask of `active`.
    active_mark: Vec<bool>,
    /// Whether solves cache and reuse the previous solution.
    warm_enabled: bool,
    /// The cached previous solution, when warm starts are enabled.
    warm: Option<WarmEntry>,
    /// Links whose residual conditions changed since the cached solve.
    dirty: Vec<LinkId>,
    /// Membership mask of `dirty` (indexed by link, grown on demand).
    dirty_mark: Vec<bool>,
}

impl FmcfScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables warm-started solves (see the
    /// [type docs](FmcfScratch#warm-starts)). Disabling drops the cached
    /// solution, so re-enabling starts cold.
    ///
    /// The cache probes the cost function at `LinkId(0)` to fingerprint it,
    /// which assumes link-homogeneous costs (true for [`PowerFlowCost`]);
    /// callers alternating *per-link heterogeneous* costs on one scratch
    /// should call [`FmcfScratch::clear_warm_cache`] between them.
    pub fn set_warm_start(&mut self, enabled: bool) {
        self.warm_enabled = enabled;
        if !enabled {
            self.clear_warm_cache();
        }
    }

    /// Whether warm-started solves are enabled.
    pub fn warm_start(&self) -> bool {
        self.warm_enabled
    }

    /// Drops the cached previous solution and the dirty-link set.
    pub fn clear_warm_cache(&mut self) {
        self.warm = None;
        self.dirty.clear();
        self.dirty_mark.fill(false);
    }

    /// Marks `links` as having changed residual conditions (capacity
    /// reservations, completed or preempted flows) since the cached solve.
    /// Cached commodities whose flows touch a dirty link are re-routed
    /// from scratch instead of being seeded; an otherwise identical
    /// re-solve whose cached flows touch a dirty link loses its shortcut.
    /// The set is consumed by the next warm-enabled solve.
    pub fn mark_dirty_links(&mut self, links: impl IntoIterator<Item = LinkId>) {
        for l in links {
            if self.dirty_mark.len() <= l.index() {
                self.dirty_mark.resize(l.index() + 1, false);
            }
            if !self.dirty_mark[l.index()] {
                self.dirty_mark[l.index()] = true;
                self.dirty.push(l);
            }
        }
    }

    /// `true` if `link` is currently marked dirty.
    fn is_dirty(&self, link: LinkId) -> bool {
        self.dirty_mark.get(link.index()).copied().unwrap_or(false)
    }

    /// Clears the dirty set after a warm solve has consumed it.
    fn consume_dirty(&mut self) {
        for &l in &self.dirty {
            self.dirty_mark[l.index()] = false;
        }
        self.dirty.clear();
    }

    /// Sizes the buffers for a problem with `n` commodities and `m` links
    /// and rebuilds the source-grouped commodity order.
    ///
    /// With `sparse` set, the active-link set starts empty and grows with
    /// the chosen paths; otherwise every link is active and the solver's
    /// passes stay dense.
    fn prepare(&mut self, commodities: &[Commodity], m: usize, sparse: bool) {
        let n = commodities.len();
        self.weights.resize(m, 0.0);
        self.target_loads.resize(m, 0.0);
        self.blended.resize(m, 0.0);
        self.path_spans.resize(n, (0, 0));
        self.order.clear();
        self.order.extend(0..n);
        self.order
            .sort_unstable_by_key(|&c| (commodities[c].src.index(), c));
        self.active.clear();
        self.active_mark.clear();
        self.active_mark.resize(m, !sparse);
        if !sparse {
            self.active.extend((0..m).map(LinkId));
        }
    }

    /// Adds every link of the freshly chosen paths to the active set,
    /// keeping it sorted (ascending link id, the historical summation
    /// order of the dense passes).
    fn register_active_paths(&mut self) {
        let mut added = false;
        for &l in &self.path_links {
            if !self.active_mark[l.index()] {
                self.active_mark[l.index()] = true;
                self.active.push(l);
                added = true;
            }
        }
        if added {
            self.active.sort_unstable();
        }
    }
}

/// The fractional solution: per-commodity, per-link flow values in one flat
/// row-major matrix, plus the aggregate per-link loads maintained by the
/// solve loop.
#[derive(Debug, Clone, PartialEq)]
pub struct FmcfSolution {
    /// `flows[c * link_count + e]` = amount of commodity `c`'s demand
    /// routed over link `e`.
    flows: Vec<f64>,
    /// Aggregate per-link loads (always consistent with `flows`).
    loads: Vec<f64>,
    /// Number of commodities.
    commodities: usize,
    /// Number of links (the row stride of `flows`).
    link_count: usize,
    /// Number of Frank–Wolfe iterations performed.
    pub iterations: usize,
    /// Whether the relative-improvement stopping criterion was reached.
    pub converged: bool,
}

impl<'a> FmcfProblem<'a> {
    /// Creates a problem instance, building a one-shot [`GraphCsr`] view of
    /// the network. Callers with many problems on the same network should
    /// build the view once and use [`FmcfProblem::with_graph`].
    ///
    /// # Panics
    ///
    /// Panics if any commodity has a non-positive demand or equal endpoints.
    pub fn new(network: &'a Network, commodities: Vec<Commodity>) -> Self {
        Self::validate(&commodities);
        Self {
            graph: GraphRef::Owned(Box::new(GraphCsr::from_network(network))),
            commodities,
        }
    }

    /// Creates a problem instance on a prebuilt CSR view.
    ///
    /// # Panics
    ///
    /// Panics if any commodity has a non-positive demand or equal endpoints.
    pub fn with_graph(graph: &'a GraphCsr, commodities: Vec<Commodity>) -> Self {
        Self::validate(&commodities);
        Self {
            graph: GraphRef::Borrowed(graph),
            commodities,
        }
    }

    fn validate(commodities: &[Commodity]) {
        for c in commodities {
            assert!(c.demand > 0.0, "commodity {} has non-positive demand", c.id);
            assert!(c.src != c.dst, "commodity {} has equal endpoints", c.id);
        }
    }

    /// The commodities of the problem.
    pub fn commodities(&self) -> &[Commodity] {
        &self.commodities
    }

    /// The CSR view the problem solves on.
    pub fn graph(&self) -> &GraphCsr {
        self.graph.get()
    }

    fn penalty(&self, load: f64, config: &FmcfSolverConfig) -> f64 {
        match config.capacity {
            Some(cap) if load > cap => config.capacity_penalty * (load - cap).powi(2),
            _ => 0.0,
        }
    }

    fn penalty_marginal(&self, load: f64, config: &FmcfSolverConfig) -> f64 {
        match config.capacity {
            Some(cap) if load > cap => 2.0 * config.capacity_penalty * (load - cap),
            _ => 0.0,
        }
    }

    /// The objective restricted to `active` links (ascending). Equal to
    /// the dense sum over every link — bit for bit — because every
    /// inactive link has exactly zero load (and the cost is either
    /// zero-load-free, or the active set covers the whole graph).
    fn objective_over(
        &self,
        loads: &[f64],
        active: &[LinkId],
        cost: &impl FlowCost,
        config: &FmcfSolverConfig,
    ) -> f64 {
        active
            .iter()
            .map(|&l| {
                let x = loads[l.index()];
                cost.cost(l, x) + self.penalty(x, config)
            })
            .sum()
    }

    /// Routes every commodity on its cheapest path under
    /// `scratch.weights`, one multi-target Dijkstra per distinct source,
    /// recording the chosen paths as spans in `scratch`. Returns `false`
    /// if some commodity has no path at all.
    fn all_or_nothing(&self, scratch: &mut FmcfScratch) -> bool {
        let FmcfScratch {
            engine,
            weights,
            order,
            path_links,
            path_spans,
            targets,
            ..
        } = scratch;
        let graph = self.graph.get();
        path_links.clear();

        let mut i = 0;
        while i < order.len() {
            let src = self.commodities[order[i]].src;
            let mut j = i;
            targets.clear();
            while j < order.len() && self.commodities[order[j]].src == src {
                targets.push(self.commodities[order[j]].dst);
                j += 1;
            }
            engine.single_source_all_targets(graph, src, targets, |l| weights[l.index()]);
            for &c in &order[i..j] {
                let dst = self.commodities[c].dst;
                if !engine.settled(dst) {
                    return false;
                }
                let start = path_links.len();
                let mut cur = dst;
                while cur != src {
                    let lid = engine
                        .parent_link(cur)
                        .expect("settled node has a parent chain");
                    path_links.push(lid);
                    cur = graph.link_src(lid);
                }
                path_links[start..].reverse();
                path_spans[c] = (start, path_links.len() - start);
            }
            i = j;
        }
        true
    }

    /// The chosen path of commodity `c` after [`Self::all_or_nothing`].
    fn span<'s>(&self, scratch: &'s FmcfScratch, c: usize) -> &'s [LinkId] {
        let (start, len) = scratch.path_spans[c];
        &scratch.path_links[start..start + len]
    }

    /// Solves the problem with Frank–Wolfe under the given convex cost,
    /// using a fresh scratch (one-shot convenience for
    /// [`FmcfProblem::solve_with`]).
    ///
    /// # Panics
    ///
    /// Panics if some commodity's destination is unreachable from its
    /// source.
    pub fn solve(&self, cost: &impl FlowCost, config: &FmcfSolverConfig) -> FmcfSolution {
        self.solve_with(cost, config, &mut FmcfScratch::new())
    }

    /// Solves the problem with Frank–Wolfe, reusing the caller's scratch
    /// buffers; after the scratch has warmed up, each Frank–Wolfe
    /// iteration is allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if some commodity's destination is unreachable from its
    /// source.
    pub fn solve_with(
        &self,
        cost: &impl FlowCost,
        config: &FmcfSolverConfig,
        scratch: &mut FmcfScratch,
    ) -> FmcfSolution {
        let m = self.graph.get().link_count();
        let n = self.commodities.len();
        if n == 0 {
            return FmcfSolution {
                flows: Vec::new(),
                // Loads stay link-indexed even with no commodities so
                // `edge_load` keeps returning 0.0 for every link.
                loads: vec![0.0; m],
                commodities: 0,
                link_count: m,
                iterations: 0,
                converged: true,
            };
        }
        // Warm shortcut: an identical problem with an untouched cache
        // returns the cached solution verbatim.
        let warm = scratch.warm_enabled;
        if warm {
            if let Some(cached) = self.try_warm_shortcut(cost, config, scratch) {
                scratch.consume_dirty();
                return cached;
            }
        }

        // With a zero-load-free cost (and a sane capacity) the objective,
        // blending and load passes can be confined to the links actually
        // touched by some chosen path: every other load stays exactly 0.0
        // and contributes exactly +0.0, so the restriction is bit-for-bit
        // neutral while cutting the per-iteration work from O(n·m) to
        // O(n·|active|).
        let sparse = cost.zero_load_is_free() && config.capacity.is_none_or(|c| c >= 0.0);
        scratch.prepare(&self.commodities, m, sparse);

        // The solution buffers are the only per-solve allocations.
        let mut flows = vec![0.0; n * m];
        let mut loads = vec![0.0; m];

        // Initial feasible point: hop-count shortest paths.
        scratch.weights.fill(1.0);
        assert!(
            self.all_or_nothing(scratch),
            "every commodity must have a path in the network"
        );
        scratch.register_active_paths();
        for (c, commodity) in self.commodities.iter().enumerate() {
            for &l in self.span(scratch, c) {
                flows[c * m + l.index()] = commodity.demand;
            }
        }
        if warm {
            self.seed_from_cache(cost, config, scratch, &mut flows, m);
        }
        column_sums_over(&flows, m, &scratch.active, &mut loads);
        let mut objective = self.objective_over(&loads, &scratch.active, cost, config);
        let mut converged = false;
        let mut iterations = 0;

        for it in 0..config.max_iterations {
            iterations = it + 1;
            // Marginal costs at the current loads (Dijkstra may traverse
            // any link, so the weights stay dense).
            for (e, w) in scratch.weights.iter_mut().enumerate() {
                *w = (cost.marginal(LinkId(e), loads[e]) + self.penalty_marginal(loads[e], config))
                    .max(0.0);
            }
            assert!(
                self.all_or_nothing(scratch),
                "every commodity must have a path in the network"
            );
            scratch.register_active_paths();
            {
                // Disjoint field borrows: read the path spans while
                // accumulating into the load buffer.
                let FmcfScratch {
                    path_links,
                    path_spans,
                    target_loads,
                    ..
                } = &mut *scratch;
                target_loads.fill(0.0);
                for (c, commodity) in self.commodities.iter().enumerate() {
                    let (start, len) = path_spans[c];
                    for &l in &path_links[start..start + len] {
                        target_loads[l.index()] += commodity.demand;
                    }
                }
            }

            // Golden-section line search on gamma in [0, 1].
            let blended = &mut scratch.blended;
            let target_loads = &scratch.target_loads;
            let active = &scratch.active;
            let eval = |gamma: f64| {
                for &l in active {
                    let e = l.index();
                    blended[e] = (1.0 - gamma) * loads[e] + gamma * target_loads[e];
                }
                self.objective_over(blended, active, cost, config)
            };
            let gamma = golden_section_min(eval, 0.0, 1.0, config.line_search_steps);
            if gamma <= 1e-12 {
                converged = true;
                break;
            }

            // Blend: scale the matrix (inactive columns are exactly zero),
            // then add the assignment back on the (sparse) chosen paths.
            // Bit-identical to the dense two-matrix blend because the
            // assignment is zero elsewhere.
            let keep = 1.0 - gamma;
            for row in flows.chunks_exact_mut(m) {
                for &l in &scratch.active {
                    row[l.index()] *= keep;
                }
            }
            for (c, commodity) in self.commodities.iter().enumerate() {
                for &l in self.span(scratch, c) {
                    flows[c * m + l.index()] += gamma * commodity.demand;
                }
            }
            column_sums_over(&flows, m, &scratch.active, &mut loads);
            let new_objective = self.objective_over(&loads, &scratch.active, cost, config);
            let improvement = (objective - new_objective) / objective.abs().max(1e-12);
            objective = new_objective;
            if improvement.abs() < config.tolerance {
                converged = true;
                break;
            }
        }

        // Clean tiny numerical residue so that path decomposition
        // terminates, and refresh the loads to stay consistent.
        for row in flows.chunks_exact_mut(m) {
            for &l in &scratch.active {
                let fe = &mut row[l.index()];
                if *fe < 1e-12 {
                    *fe = 0.0;
                }
            }
        }
        column_sums_over(&flows, m, &scratch.active, &mut loads);

        if warm {
            scratch.warm = Some(WarmEntry {
                keys: self
                    .commodities
                    .iter()
                    .map(|c| (c.id, c.src.index(), c.dst.index(), c.demand.to_bits()))
                    .collect(),
                flows: flows.clone(),
                loads: loads.clone(),
                link_count: m,
                graph_epoch: self.graph.get().epoch(),
                iterations,
                converged,
                active: scratch
                    .active
                    .iter()
                    .copied()
                    .filter(|&l| loads[l.index()] != 0.0)
                    .collect(),
                config_bits: config_fingerprint(config),
                cost_bits: cost_fingerprint(cost),
            });
            scratch.consume_dirty();
        }

        FmcfSolution {
            flows,
            loads,
            commodities: n,
            link_count: m,
            iterations,
            converged,
        }
    }

    /// Returns the cached solution when the problem is bit-identical to
    /// the cached one and no dirty link touches its flows.
    fn try_warm_shortcut(
        &self,
        cost: &impl FlowCost,
        config: &FmcfSolverConfig,
        scratch: &FmcfScratch,
    ) -> Option<FmcfSolution> {
        let entry = scratch.warm.as_ref()?;
        let m = self.graph.get().link_count();
        if entry.link_count != m
            || entry.graph_epoch != self.graph.get().epoch()
            || entry.keys.len() != self.commodities.len()
            || entry.config_bits != config_fingerprint(config)
            || entry.cost_bits != cost_fingerprint(cost)
        {
            return None;
        }
        let same = self
            .commodities
            .iter()
            .zip(&entry.keys)
            .all(|(c, k)| *k == (c.id, c.src.index(), c.dst.index(), c.demand.to_bits()));
        if !same || entry.active.iter().any(|&l| scratch.is_dirty(l)) {
            return None;
        }
        Some(FmcfSolution {
            flows: entry.flows.clone(),
            loads: entry.loads.clone(),
            commodities: entry.keys.len(),
            link_count: m,
            iterations: entry.iterations,
            converged: entry.converged,
        })
    }

    /// Overwrites the hop-count initial rows of commodities carried over
    /// from the cached problem with their previous converged flows (scaled
    /// to the new demand), skipping commodities whose cached flows touch a
    /// dirty link. Registers the seeded links as active.
    fn seed_from_cache(
        &self,
        cost: &impl FlowCost,
        config: &FmcfSolverConfig,
        scratch: &mut FmcfScratch,
        flows: &mut [f64],
        m: usize,
    ) {
        let mut seeded_links: Vec<LinkId> = Vec::new();
        {
            let Some(entry) = scratch.warm.as_ref() else {
                return;
            };
            if entry.link_count != m
                || entry.graph_epoch != self.graph.get().epoch()
                || entry.config_bits != config_fingerprint(config)
                || entry.cost_bits != cost_fingerprint(cost)
            {
                return;
            }
            let index: std::collections::HashMap<usize, usize> = entry
                .keys
                .iter()
                .enumerate()
                .map(|(row, k)| (k.0, row))
                .collect();
            for (c, commodity) in self.commodities.iter().enumerate() {
                let Some(&row) = index.get(&commodity.id) else {
                    continue;
                };
                let (_, src, dst, demand_bits) = entry.keys[row];
                if src != commodity.src.index() || dst != commodity.dst.index() {
                    continue;
                }
                let old_demand = f64::from_bits(demand_bits);
                if !old_demand.is_finite() || old_demand <= 0.0 {
                    continue;
                }
                let cached = &entry.flows[row * m..(row + 1) * m];
                if entry
                    .active
                    .iter()
                    .any(|&l| cached[l.index()] != 0.0 && scratch.is_dirty(l))
                {
                    continue;
                }
                // Replace the hop-count initial path with the scaled cached
                // row; scaling a valid flow preserves conservation at the
                // new demand.
                let scale = commodity.demand / old_demand;
                let (start, len) = scratch.path_spans[c];
                for &l in &scratch.path_links[start..start + len] {
                    flows[c * m + l.index()] = 0.0;
                }
                for &l in &entry.active {
                    let v = cached[l.index()];
                    if v != 0.0 {
                        flows[c * m + l.index()] = v * scale;
                        if !scratch.active_mark[l.index()] {
                            seeded_links.push(l);
                        }
                    }
                }
            }
        }
        let mut added = false;
        for l in seeded_links {
            if !scratch.active_mark[l.index()] {
                scratch.active_mark[l.index()] = true;
                scratch.active.push(l);
                added = true;
            }
        }
        if added {
            scratch.active.sort_unstable();
        }
    }
}

/// Bit-pattern fingerprint of a solver configuration for warm-cache
/// validity checks.
fn config_fingerprint(config: &FmcfSolverConfig) -> [u64; 5] {
    [
        config.max_iterations as u64,
        config.tolerance.to_bits(),
        config.capacity.map_or(u64::MAX, f64::to_bits),
        config.capacity_penalty.to_bits(),
        config.line_search_steps as u64,
    ]
}

/// Bit-pattern probe of a cost function at `LinkId(0)`; distinguishes
/// link-homogeneous costs (different power functions hash differently)
/// without requiring `PartialEq` on the trait.
fn cost_fingerprint(cost: &impl FlowCost) -> [u64; 3] {
    [
        cost.cost(LinkId(0), 1.0).to_bits(),
        cost.cost(LinkId(0), 2.0).to_bits(),
        cost.marginal(LinkId(0), 1.0).to_bits(),
    ]
}

impl FmcfSolution {
    /// Number of commodities in the solution.
    pub fn commodity_count(&self) -> usize {
        self.commodities
    }

    /// The flow of commodity index `c` (position in the problem's commodity
    /// list) on `link`.
    pub fn commodity_flow(&self, c: usize, link: LinkId) -> f64 {
        self.flows[c * self.link_count + link.index()]
    }

    /// The full per-link flow vector of commodity index `c`.
    pub fn commodity_flows(&self, c: usize) -> &[f64] {
        &self.flows[c * self.link_count..(c + 1) * self.link_count]
    }

    /// The aggregate load on `link` over all commodities.
    pub fn edge_load(&self, link: LinkId) -> f64 {
        self.loads[link.index()]
    }

    /// Aggregate loads on all links, maintained by the solve loop (no
    /// recomputation).
    pub fn total_loads(&self) -> &[f64] {
        &self.loads
    }

    /// The objective value under a cost function (no capacity penalty).
    pub fn total_cost(&self, cost: &impl FlowCost) -> f64 {
        self.loads
            .iter()
            .enumerate()
            .map(|(e, &x)| cost.cost(LinkId(e), x))
            .sum()
    }

    /// Net out-flow minus in-flow of commodity `c` at `node` — used to check
    /// flow conservation.
    pub fn net_outflow(&self, network: &Network, c: usize, node: NodeId) -> f64 {
        let outgoing: f64 = network
            .out_links(node)
            .iter()
            .map(|&l| self.commodity_flow(c, l))
            .sum();
        let incoming: f64 = network
            .in_links(node)
            .iter()
            .map(|&l| self.commodity_flow(c, l))
            .sum();
        outgoing - incoming
    }
}

/// Accumulates the per-link column sums of the flat row-major flow matrix
/// into `out`, visiting only `active` columns (rows in commodity order,
/// preserving the historical per-link summation order bit-for-bit; the
/// skipped columns are exactly zero in every row).
fn column_sums_over(rows: &[f64], m: usize, active: &[LinkId], out: &mut [f64]) {
    out.fill(0.0);
    if m == 0 {
        return;
    }
    for row in rows.chunks_exact(m) {
        for &l in active {
            out[l.index()] += row[l.index()];
        }
    }
}

/// Minimises a unimodal function on `[lo, hi]` by golden-section search.
fn golden_section_min(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, steps: usize) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..steps {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    // Also consider the endpoints explicitly; the objective may be monotone.
    let mid = 0.5 * (a + b);
    let candidates = [lo, mid, hi];
    let mut best = candidates[0];
    let mut best_val = f(best);
    for &x in &candidates[1..] {
        let v = f(x);
        if v < best_val {
            best_val = v;
            best = x;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::builders;

    fn quadratic_cost() -> PowerFlowCost {
        PowerFlowCost::new(PowerFunction::speed_scaling_only(1.0, 2.0, 1e9))
    }

    fn tight_config() -> FmcfSolverConfig {
        FmcfSolverConfig {
            max_iterations: 400,
            tolerance: 1e-7,
            ..Default::default()
        }
    }

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let min = golden_section_min(|x| (x - 0.3).powi(2), 0.0, 1.0, 60);
        assert!((min - 0.3).abs() < 1e-6);
        // Monotone decreasing function: minimum at the right endpoint.
        let min = golden_section_min(|x| -x, 0.0, 1.0, 60);
        assert!((min - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_commodity_splits_evenly_over_parallel_links() {
        // With cost x^2, routing demand d over k identical parallel links is
        // optimal when split evenly: cost k * (d/k)^2 = d^2 / k.
        let t = builders::parallel(4, 100.0);
        let problem = FmcfProblem::new(
            &t.network,
            vec![Commodity {
                id: 0,
                src: t.source(),
                dst: t.sink(),
                demand: 8.0,
            }],
        );
        let sol = problem.solve(&quadratic_cost(), &tight_config());
        let cost = sol.total_cost(&quadratic_cost());
        assert!(
            close(cost, 8.0 * 8.0 / 4.0, 0.02),
            "cost {cost} should approach the even split optimum 16"
        );
        // Each forward link should carry roughly 2 units.
        let mut carried = 0.0;
        for l in t.network.find_links(t.source(), t.sink()) {
            let x = sol.edge_load(l);
            assert!(x < 3.0, "link load {x} too concentrated");
            carried += x;
        }
        assert!(close(carried, 8.0, 1e-6));
    }

    #[test]
    fn flow_conservation_holds_at_every_node() {
        let t = builders::fat_tree(4);
        let hosts = t.hosts();
        let commodities = vec![
            Commodity {
                id: 0,
                src: hosts[0],
                dst: hosts[10],
                demand: 3.0,
            },
            Commodity {
                id: 1,
                src: hosts[3],
                dst: hosts[12],
                demand: 1.5,
            },
            Commodity {
                id: 2,
                src: hosts[5],
                dst: hosts[1],
                demand: 2.0,
            },
        ];
        let problem = FmcfProblem::new(&t.network, commodities.clone());
        let sol = problem.solve(&quadratic_cost(), &tight_config());
        for (ci, c) in commodities.iter().enumerate() {
            for node in t.network.nodes() {
                let net = sol.net_outflow(&t.network, ci, node.id);
                let expected = if node.id == c.src {
                    c.demand
                } else if node.id == c.dst {
                    -c.demand
                } else {
                    0.0
                };
                assert!(
                    (net - expected).abs() < 1e-6,
                    "commodity {ci} violates conservation at {}: {net} vs {expected}",
                    node.id
                );
            }
        }
    }

    #[test]
    fn two_commodities_avoid_each_other_on_diamond() {
        // Two commodities between the same endpoints over two disjoint
        // 2-hop routes: the optimum sends them on different routes.
        let t = builders::parallel(2, 100.0);
        let problem = FmcfProblem::new(
            &t.network,
            vec![
                Commodity {
                    id: 0,
                    src: t.source(),
                    dst: t.sink(),
                    demand: 2.0,
                },
                Commodity {
                    id: 1,
                    src: t.source(),
                    dst: t.sink(),
                    demand: 2.0,
                },
            ],
        );
        let sol = problem.solve(&quadratic_cost(), &tight_config());
        // Total forward load 4 split over 2 links: 2 each, cost 8 (vs 16 if
        // they shared one link).
        let cost = sol.total_cost(&quadratic_cost());
        assert!(close(cost, 8.0, 0.02), "cost {cost} should approach 8");
    }

    #[test]
    fn fractional_cost_is_below_any_single_path_cost() {
        // The relaxation must lower-bound the best single-path routing.
        let t = builders::parallel(3, 100.0);
        let demand = 6.0;
        let problem = FmcfProblem::new(
            &t.network,
            vec![Commodity {
                id: 0,
                src: t.source(),
                dst: t.sink(),
                demand,
            }],
        );
        let cost_fn = quadratic_cost();
        let sol = problem.solve(&cost_fn, &tight_config());
        let single_path_cost = demand * demand; // all on one link
        assert!(sol.total_cost(&cost_fn) <= single_path_cost + 1e-6);
    }

    #[test]
    fn capacity_penalty_spreads_load() {
        let t = builders::parallel(2, 2.0);
        let problem = FmcfProblem::new(
            &t.network,
            vec![Commodity {
                id: 0,
                src: t.source(),
                dst: t.sink(),
                demand: 4.0,
            }],
        );
        // Nearly linear cost => without capacities a single path would be fine.
        let cost = PowerFlowCost::new(PowerFunction::speed_scaling_only(1.0, 1.01, 10.0));
        let config = FmcfSolverConfig {
            capacity: Some(2.0),
            ..Default::default()
        };
        let sol = problem.solve(&cost, &config);
        for l in t.network.find_links(t.source(), t.sink()) {
            assert!(
                sol.edge_load(l) <= 2.0 + 0.05,
                "load {} exceeds capacity",
                sol.edge_load(l)
            );
        }
    }

    #[test]
    fn empty_problem_solves_trivially() {
        let t = builders::line(2);
        let problem = FmcfProblem::new(&t.network, vec![]);
        let sol = problem.solve(&quadratic_cost(), &tight_config());
        assert!(sol.converged);
        assert_eq!(sol.commodity_count(), 0);
    }

    #[test]
    fn shared_graph_and_scratch_match_the_one_shot_path() {
        let t = builders::fat_tree(4);
        let hosts = t.hosts();
        let graph = t.csr();
        let mut scratch = FmcfScratch::new();
        let cost = quadratic_cost();
        let config = tight_config();
        // Two different problems reusing one scratch must match their
        // one-shot counterparts exactly.
        for (a, b, d) in [(0usize, 10usize, 3.0), (5, 1, 2.0), (2, 14, 1.0)] {
            let commodities = vec![Commodity {
                id: 0,
                src: hosts[a],
                dst: hosts[b],
                demand: d,
            }];
            let shared = FmcfProblem::with_graph(&graph, commodities.clone()).solve_with(
                &cost,
                &config,
                &mut scratch,
            );
            let one_shot = FmcfProblem::new(&t.network, commodities).solve(&cost, &config);
            assert_eq!(shared, one_shot);
        }
    }

    #[test]
    fn total_loads_is_consistent_with_commodity_flows() {
        let t = builders::fat_tree(4);
        let hosts = t.hosts();
        let problem = FmcfProblem::new(
            &t.network,
            vec![
                Commodity {
                    id: 0,
                    src: hosts[0],
                    dst: hosts[9],
                    demand: 2.0,
                },
                Commodity {
                    id: 1,
                    src: hosts[0],
                    dst: hosts[12],
                    demand: 1.0,
                },
            ],
        );
        let sol = problem.solve(&quadratic_cost(), &tight_config());
        let loads = sol.total_loads();
        assert_eq!(loads.len(), t.network.link_count());
        for (e, &load) in loads.iter().enumerate() {
            let expected: f64 = (0..sol.commodity_count())
                .map(|c| sol.commodity_flow(c, LinkId(e)))
                .sum();
            assert!((load - expected).abs() < 1e-12);
            assert_eq!(load, sol.edge_load(LinkId(e)));
        }
    }

    #[test]
    #[should_panic(expected = "non-positive demand")]
    fn zero_demand_rejected() {
        let t = builders::line(2);
        FmcfProblem::new(
            &t.network,
            vec![Commodity {
                id: 0,
                src: t.hosts()[0],
                dst: t.hosts()[1],
                demand: 0.0,
            }],
        );
    }

    #[test]
    fn warm_shortcut_returns_the_cold_solution_bit_for_bit() {
        let t = builders::fat_tree(4);
        let hosts = t.hosts();
        let graph = t.csr();
        let cost = quadratic_cost();
        let config = FmcfSolverConfig::default();
        let commodities = vec![
            Commodity {
                id: 0,
                src: hosts[0],
                dst: hosts[10],
                demand: 3.0,
            },
            Commodity {
                id: 7,
                src: hosts[3],
                dst: hosts[12],
                demand: 1.5,
            },
        ];
        let cold = FmcfProblem::with_graph(&graph, commodities.clone()).solve_with(
            &cost,
            &config,
            &mut FmcfScratch::new(),
        );
        let mut scratch = FmcfScratch::new();
        scratch.set_warm_start(true);
        let problem = FmcfProblem::with_graph(&graph, commodities);
        let first = problem.solve_with(&cost, &config, &mut scratch);
        let second = problem.solve_with(&cost, &config, &mut scratch);
        assert_eq!(first, cold, "warm-enabled first solve must stay cold");
        assert_eq!(second, cold, "warm re-solve must return the cache verbatim");
    }

    #[test]
    fn dirty_links_disable_the_shortcut_but_not_correctness() {
        let t = builders::fat_tree(4);
        let hosts = t.hosts();
        let graph = t.csr();
        let cost = quadratic_cost();
        let config = tight_config();
        let commodities = vec![Commodity {
            id: 3,
            src: hosts[0],
            dst: hosts[10],
            demand: 2.0,
        }];
        let mut scratch = FmcfScratch::new();
        scratch.set_warm_start(true);
        let problem = FmcfProblem::with_graph(&graph, commodities);
        let first = problem.solve_with(&cost, &config, &mut scratch);
        // Dirty every link the solution uses: the commodity is re-routed
        // fresh, which for a single commodity lands on the same optimum.
        let used: Vec<LinkId> = (0..graph.link_count())
            .map(LinkId)
            .filter(|&l| first.edge_load(l) != 0.0)
            .collect();
        scratch.mark_dirty_links(used);
        let resolved = problem.solve_with(&cost, &config, &mut scratch);
        assert!(resolved.iterations >= 1, "shortcut must not fire");
        assert!(close(
            resolved.total_cost(&cost),
            first.total_cost(&cost),
            1e-6
        ));
        // The dirty set was consumed: the next re-solve shortcuts again.
        let third = problem.solve_with(&cost, &config, &mut scratch);
        assert_eq!(third, resolved);
    }

    #[test]
    fn seeded_resolve_conserves_flow_and_matches_the_cold_objective() {
        let t = builders::fat_tree(4);
        let hosts = t.hosts();
        let graph = t.csr();
        let cost = quadratic_cost();
        let config = tight_config();
        let base = vec![
            Commodity {
                id: 0,
                src: hosts[0],
                dst: hosts[10],
                demand: 3.0,
            },
            Commodity {
                id: 1,
                src: hosts[3],
                dst: hosts[12],
                demand: 1.5,
            },
        ];
        let mut grown = base.clone();
        grown.push(Commodity {
            id: 2,
            src: hosts[5],
            dst: hosts[1],
            demand: 2.0,
        });

        let mut scratch = FmcfScratch::new();
        scratch.set_warm_start(true);
        FmcfProblem::with_graph(&graph, base).solve_with(&cost, &config, &mut scratch);
        let warm =
            FmcfProblem::with_graph(&graph, grown.clone()).solve_with(&cost, &config, &mut scratch);
        let cold = FmcfProblem::with_graph(&graph, grown.clone()).solve_with(
            &cost,
            &config,
            &mut FmcfScratch::new(),
        );

        // The seeded start is a different (better) initial point, so the
        // converged matrices differ in the low bits — but conservation is
        // exact and the objectives agree to solver tolerance.
        for (ci, c) in grown.iter().enumerate() {
            for node in t.network.nodes() {
                let net = warm.net_outflow(&t.network, ci, node.id);
                let expected = if node.id == c.src {
                    c.demand
                } else if node.id == c.dst {
                    -c.demand
                } else {
                    0.0
                };
                assert!(
                    (net - expected).abs() < 1e-6,
                    "warm-seeded commodity {ci} violates conservation at {}",
                    node.id
                );
            }
        }
        assert!(
            close(warm.total_cost(&cost), cold.total_cost(&cost), 1e-3),
            "warm {} vs cold {}",
            warm.total_cost(&cost),
            cold.total_cost(&cost)
        );
    }

    #[test]
    fn disabling_warm_start_drops_the_cache() {
        let t = builders::parallel(2, 100.0);
        let graph = t.csr();
        let cost = quadratic_cost();
        let config = tight_config();
        let commodities = vec![Commodity {
            id: 0,
            src: t.source(),
            dst: t.sink(),
            demand: 4.0,
        }];
        let mut scratch = FmcfScratch::new();
        scratch.set_warm_start(true);
        let problem = FmcfProblem::with_graph(&graph, commodities);
        problem.solve_with(&cost, &config, &mut scratch);
        scratch.set_warm_start(false);
        assert!(!scratch.warm_start());
        // Cold again: must match a fresh scratch bit-for-bit.
        let after = problem.solve_with(&cost, &config, &mut scratch);
        let fresh = problem.solve_with(&cost, &config, &mut FmcfScratch::new());
        assert_eq!(after, fresh);
    }

    #[test]
    fn power_flow_cost_includes_idle_share() {
        let f = PowerFunction::new(10.0, 1.0, 2.0, 5.0).unwrap();
        let cost = PowerFlowCost::new(f);
        // cost(x) = x^2 + (10/5) x = x^2 + 2x
        assert!(close(cost.cost(LinkId(0), 3.0), 9.0 + 6.0, 1e-12));
        assert!(close(cost.marginal(LinkId(0), 3.0), 6.0 + 2.0, 1e-12));
        assert_eq!(cost.cost(LinkId(0), 0.0), 0.0);
    }
}
