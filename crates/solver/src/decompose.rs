//! Raghavan–Tompson path decomposition of a fractional flow.
//!
//! Random-Schedule (Algorithm 2, line 4) turns the fractional per-commodity
//! edge flow `y*_{i,e}(k)` into a set of candidate routing paths with
//! weights: repeatedly extract a source→destination path through links that
//! still carry positive flow, give it a weight equal to the bottleneck flow
//! value along it, and subtract that weight from every link of the path.
//! The weights of the extracted paths sum to the routed demand, so after
//! normalisation they form the probability distribution from which the
//! randomized rounding step samples a single path per flow.

use dcn_topology::{LinkId, Network, NodeId, Path};
use std::collections::VecDeque;

/// A candidate routing path together with the amount of fractional flow it
/// carries.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedPath {
    /// The path.
    pub path: Path,
    /// The fractional flow assigned to the path (the Raghavan–Tompson
    /// bottleneck weight).
    pub weight: f64,
}

/// Decomposes a per-link fractional flow of a single commodity into weighted
/// source→destination paths.
///
/// `edge_flow[e]` is the flow of the commodity on link id `e`. Flow that
/// circulates on cycles (which can appear as numerical noise in iterative
/// solvers) is ignored: decomposition stops as soon as no residual path from
/// `src` to `dst` exists through links with more than `epsilon` flow.
///
/// The returned weights sum to the amount of flow that actually travels from
/// `src` to `dst` (up to `epsilon` per extracted path).
///
/// # Panics
///
/// Panics if `edge_flow` is shorter than the network's link count.
pub fn decompose_flow(
    network: &Network,
    src: NodeId,
    dst: NodeId,
    edge_flow: &[f64],
    epsilon: f64,
) -> Vec<WeightedPath> {
    assert!(
        edge_flow.len() >= network.link_count(),
        "edge_flow has {} entries but the network has {} links",
        edge_flow.len(),
        network.link_count()
    );
    let mut residual: Vec<f64> = edge_flow.to_vec();
    let mut out = Vec::new();

    // Safety valve: each extraction zeroes at least one link, so the number
    // of iterations is bounded by the number of links.
    for _ in 0..network.link_count() + 1 {
        let Some(path) = positive_flow_path(network, src, dst, &residual, epsilon) else {
            break;
        };
        let bottleneck = path
            .links()
            .iter()
            .map(|&l| residual[l.index()])
            .fold(f64::INFINITY, f64::min);
        if bottleneck <= epsilon || bottleneck.is_nan() {
            break;
        }
        for &l in path.links() {
            residual[l.index()] -= bottleneck;
        }
        out.push(WeightedPath {
            path,
            weight: bottleneck,
        });
    }
    out
}

/// BFS for a path from `src` to `dst` using only links whose residual flow
/// exceeds `epsilon`. Ties are broken by link insertion order, which keeps
/// the decomposition deterministic.
fn positive_flow_path(
    network: &Network,
    src: NodeId,
    dst: NodeId,
    residual: &[f64],
    epsilon: f64,
) -> Option<Path> {
    let n = network.node_count();
    let mut parent: Vec<Option<LinkId>> = vec![None; n];
    let mut visited = vec![false; n];
    visited[src.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &lid in network.out_links(u) {
            if residual[lid.index()] <= epsilon {
                continue;
            }
            let v = network.link(lid).dst;
            if !visited[v.index()] {
                visited[v.index()] = true;
                parent[v.index()] = Some(lid);
                if v == dst {
                    let mut links_rev = Vec::new();
                    let mut cur = dst;
                    while cur != src {
                        let l = parent[cur.index()].expect("BFS parent chain is complete");
                        links_rev.push(l);
                        cur = network.link(l).src;
                    }
                    links_rev.reverse();
                    return Path::from_links(network, src, &links_rev).ok();
                }
                queue.push_back(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmcf::{Commodity, FmcfProblem, FmcfSolverConfig, PowerFlowCost};
    use dcn_power::PowerFunction;
    use dcn_topology::builders;

    #[test]
    fn single_path_flow_decomposes_to_that_path() {
        let t = builders::line(3);
        let net = &t.network;
        let p = net.shortest_path(t.source(), t.sink()).unwrap();
        let mut edge_flow = vec![0.0; net.link_count()];
        for &l in p.links() {
            edge_flow[l.index()] = 2.5;
        }
        let parts = decompose_flow(net, t.source(), t.sink(), &edge_flow, 1e-9);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].path, p);
        assert!((parts[0].weight - 2.5).abs() < 1e-12);
    }

    #[test]
    fn split_flow_decomposes_into_both_branches() {
        let t = builders::parallel(2, 10.0);
        let net = &t.network;
        let links: Vec<_> = net.find_links(t.source(), t.sink()).collect();
        let mut edge_flow = vec![0.0; net.link_count()];
        edge_flow[links[0].index()] = 1.0;
        edge_flow[links[1].index()] = 3.0;
        let parts = decompose_flow(net, t.source(), t.sink(), &edge_flow, 1e-9);
        assert_eq!(parts.len(), 2);
        let total: f64 = parts.iter().map(|p| p.weight).sum();
        assert!((total - 4.0).abs() < 1e-9);
    }

    #[test]
    fn weights_sum_to_demand_for_fmcf_solutions() {
        let t = builders::fat_tree(4);
        let hosts = t.hosts();
        let demand = 5.0;
        let problem = FmcfProblem::new(
            &t.network,
            vec![Commodity {
                id: 0,
                src: hosts[0],
                dst: hosts[15],
                demand,
            }],
        );
        let cost = PowerFlowCost::new(PowerFunction::speed_scaling_only(1.0, 2.0, 1e9));
        let sol = problem.solve(&cost, &FmcfSolverConfig::default());
        let parts = decompose_flow(
            &t.network,
            hosts[0],
            hosts[15],
            sol.commodity_flows(0),
            1e-9,
        );
        assert!(!parts.is_empty());
        let total: f64 = parts.iter().map(|p| p.weight).sum();
        assert!(
            (total - demand).abs() < 1e-3,
            "decomposed weight {total} should equal the demand {demand}"
        );
        for wp in &parts {
            assert_eq!(wp.path.source(), hosts[0]);
            assert_eq!(wp.path.destination(), hosts[15]);
            assert!(wp.weight > 0.0);
        }
    }

    #[test]
    fn cycle_flow_is_ignored() {
        // A cycle between two middle nodes plus a genuine src->dst path.
        let t = builders::line(4);
        let net = &t.network;
        let mut edge_flow = vec![0.0; net.link_count()];
        let p = net.shortest_path(t.source(), t.sink()).unwrap();
        for &l in p.links() {
            edge_flow[l.index()] = 1.0;
        }
        // Add a 2-cycle between hosts 1 and 2.
        let fwd = net.find_link(t.hosts()[1], t.hosts()[2]).unwrap();
        let back = net.find_link(t.hosts()[2], t.hosts()[1]).unwrap();
        edge_flow[fwd.index()] += 0.7;
        edge_flow[back.index()] += 0.7;
        let parts = decompose_flow(net, t.source(), t.sink(), &edge_flow, 1e-9);
        let total: f64 = parts.iter().map(|p| p.weight).sum();
        // Only the genuine unit of src->dst flow is decomposed; the cycle
        // remainder never produces a src->dst path on its own.
        assert!((total - 1.0).abs() < 0.71, "total {total}");
        for wp in &parts {
            assert_eq!(wp.path.source(), t.source());
            assert_eq!(wp.path.destination(), t.sink());
        }
    }

    #[test]
    fn zero_flow_decomposes_to_nothing() {
        let t = builders::line(3);
        let edge_flow = vec![0.0; t.network.link_count()];
        let parts = decompose_flow(&t.network, t.source(), t.sink(), &edge_flow, 1e-9);
        assert!(parts.is_empty());
    }

    #[test]
    #[should_panic(expected = "entries")]
    fn short_edge_flow_vector_panics() {
        let t = builders::line(3);
        decompose_flow(&t.network, t.source(), t.sink(), &[0.0], 1e-9);
    }
}
