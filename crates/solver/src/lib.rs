//! Optimization substrate for the deadline-constrained scheduling and
//! routing algorithms.
//!
//! The paper relies on three optimization building blocks that it treats as
//! given; this crate implements all of them from scratch:
//!
//! * [`yds`] — the Yao–Demers–Shenker optimal single-processor speed-scaling
//!   algorithm (FOCS 1995). The paper's Most-Critical-First algorithm for
//!   DCFS is a variant of YDS run on *virtual weights*, and its correctness
//!   argument (Theorem 1) reduces to YDS optimality.
//! * [`fmcf`] — fractional multi-commodity flow with convex, separable link
//!   costs, solved by the Frank–Wolfe (conditional-gradient) method with
//!   marginal-cost shortest paths and golden-section line search. This is
//!   the "solved by convex programming" step of Random-Schedule
//!   (Algorithm 2, line 3).
//! * [`decompose`] — Raghavan–Tompson flow-path decomposition of a
//!   per-commodity edge flow into weighted paths (Algorithm 2, line 4).
//!
//! Two auxiliary modules support them: [`availability`] tracks blocked /
//! available time on a resource (needed by the critical-interval machinery),
//! and [`brute`] contains small exact or exhaustive solvers used by the test
//! suite to certify optimality on micro instances.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod availability;
pub mod brute;
pub mod decompose;
pub mod fmcf;
pub mod yds;

pub use availability::TimeAvailability;
pub use decompose::{decompose_flow, WeightedPath};
pub use fmcf::{Commodity, FlowCost, FmcfProblem, FmcfSolution, FmcfSolverConfig, PowerFlowCost};
pub use yds::{edf_schedule, yds_schedule, Job, JobPlacement, YdsSchedule};
