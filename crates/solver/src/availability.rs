//! Tracking of available (unblocked) time on a resource.
//!
//! The critical-interval machinery of YDS and Most-Critical-First repeatedly
//! "removes" the time occupied by already-scheduled work: the intensity of
//! an interval is computed with respect to the *available* time `a ~ b`
//! (paper, Definition 1), and newly scheduled flows may only occupy
//! available time. [`TimeAvailability`] maintains the set of blocked
//! intervals and answers those queries.

/// The set of blocked (unavailable) time intervals on a resource, starting
/// from a fully available timeline.
///
/// # Example
///
/// ```
/// use dcn_solver::TimeAvailability;
///
/// let mut avail = TimeAvailability::new();
/// avail.block(2.0, 4.0);
/// assert_eq!(avail.available_between(0.0, 6.0), 4.0);
/// assert_eq!(avail.available_subintervals(1.0, 5.0), vec![(1.0, 2.0), (4.0, 5.0)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeAvailability {
    /// Disjoint, sorted blocked intervals.
    blocked: Vec<(f64, f64)>,
}

impl TimeAvailability {
    /// Creates a fully available timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `[start, end)` as blocked (unavailable).
    ///
    /// Blocking an already blocked region is allowed; regions are merged.
    ///
    /// # Panics
    ///
    /// Panics if `end < start` or either bound is not finite.
    pub fn block(&mut self, start: f64, end: f64) {
        assert!(
            start.is_finite() && end.is_finite(),
            "blocked interval must be finite"
        );
        assert!(end >= start, "interval end {end} precedes start {start}");
        if end == start {
            return;
        }
        self.blocked.push((start, end));
        self.normalize();
    }

    fn normalize(&mut self) {
        self.blocked
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite intervals"));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(self.blocked.len());
        for &(s, e) in &self.blocked {
            match merged.last_mut() {
                Some(last) if s <= last.1 + 1e-12 => {
                    last.1 = last.1.max(e);
                }
                _ => merged.push((s, e)),
            }
        }
        self.blocked = merged;
    }

    /// The blocked intervals, disjoint and sorted.
    pub fn blocked_intervals(&self) -> &[(f64, f64)] {
        &self.blocked
    }

    /// Total blocked time inside `[start, end)`.
    ///
    /// An empty or reversed window (`end <= start`) contains no time, so
    /// the result is `0.0`.
    pub fn blocked_between(&self, start: f64, end: f64) -> f64 {
        self.blocked
            .iter()
            .map(|&(s, e)| {
                let lo = s.max(start);
                let hi = e.min(end);
                (hi - lo).max(0.0)
            })
            .sum()
    }

    /// The available time `a ~ b` inside `[start, end)`.
    ///
    /// An empty or reversed window (`end <= start`) yields `0.0`.
    pub fn available_between(&self, start: f64, end: f64) -> f64 {
        ((end - start) - self.blocked_between(start, end)).max(0.0)
    }

    /// The maximal available sub-intervals of `[start, end)`, sorted.
    ///
    /// Never panics on degenerate windows: an empty or reversed window
    /// (`end <= start`) and a window entirely covered by blocked time both
    /// yield an empty vector, and sub-intervals shorter than the merge
    /// tolerance (`1e-12`) are dropped rather than returned as zero-width
    /// slivers. Callers can therefore treat "no available time" and
    /// "degenerate query" uniformly as the empty case.
    pub fn available_subintervals(&self, start: f64, end: f64) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut cursor = start;
        for &(s, e) in &self.blocked {
            if e <= start {
                continue;
            }
            if s >= end {
                break;
            }
            let s_clip = s.max(start);
            if s_clip > cursor {
                out.push((cursor, s_clip));
            }
            cursor = cursor.max(e.min(end));
        }
        if cursor < end {
            out.push((cursor, end));
        }
        out.retain(|&(a, b)| b - a > 1e-12);
        out
    }

    /// Returns `true` if the instant `t` lies inside a blocked interval.
    pub fn is_blocked_at(&self, t: f64) -> bool {
        self.blocked.iter().any(|&(s, e)| t >= s && t < e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_timeline_is_fully_available() {
        let a = TimeAvailability::new();
        assert_eq!(a.available_between(0.0, 10.0), 10.0);
        assert_eq!(a.available_subintervals(0.0, 10.0), vec![(0.0, 10.0)]);
        assert!(!a.is_blocked_at(5.0));
    }

    #[test]
    fn blocking_reduces_availability() {
        let mut a = TimeAvailability::new();
        a.block(2.0, 4.0);
        a.block(6.0, 7.0);
        assert_eq!(a.available_between(0.0, 10.0), 7.0);
        assert_eq!(a.blocked_between(0.0, 10.0), 3.0);
        assert_eq!(
            a.available_subintervals(0.0, 10.0),
            vec![(0.0, 2.0), (4.0, 6.0), (7.0, 10.0)]
        );
        assert!(a.is_blocked_at(2.0));
        assert!(a.is_blocked_at(3.9));
        assert!(!a.is_blocked_at(4.0));
    }

    #[test]
    fn overlapping_blocks_merge() {
        let mut a = TimeAvailability::new();
        a.block(1.0, 3.0);
        a.block(2.0, 5.0);
        a.block(5.0, 6.0);
        assert_eq!(a.blocked_intervals(), &[(1.0, 6.0)]);
        assert_eq!(a.available_between(0.0, 10.0), 5.0);
    }

    #[test]
    fn queries_clip_to_window() {
        let mut a = TimeAvailability::new();
        a.block(0.0, 100.0);
        assert_eq!(a.available_between(10.0, 20.0), 0.0);
        assert!(a.available_subintervals(10.0, 20.0).is_empty());
        assert_eq!(a.blocked_between(10.0, 20.0), 10.0);
    }

    #[test]
    fn partial_overlap_with_window() {
        let mut a = TimeAvailability::new();
        a.block(5.0, 15.0);
        assert_eq!(a.available_between(0.0, 10.0), 5.0);
        assert_eq!(a.available_subintervals(0.0, 10.0), vec![(0.0, 5.0)]);
        assert_eq!(a.available_subintervals(12.0, 20.0), vec![(15.0, 20.0)]);
    }

    #[test]
    fn empty_block_is_ignored() {
        let mut a = TimeAvailability::new();
        a.block(3.0, 3.0);
        assert!(a.blocked_intervals().is_empty());
    }

    #[test]
    #[should_panic(expected = "precedes start")]
    fn reversed_block_panics() {
        let mut a = TimeAvailability::new();
        a.block(5.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_block_panics() {
        let mut a = TimeAvailability::new();
        a.block(0.0, f64::INFINITY);
    }

    #[test]
    fn degenerate_windows_are_empty_not_panicking() {
        // Reversed and zero-width query windows are answered, not
        // asserted on: every query degenerates to "no time available".
        let mut a = TimeAvailability::new();
        a.block(2.0, 4.0);
        for (s, e) in [(5.0, 1.0), (3.0, 3.0), (10.0, -10.0)] {
            assert!(a.available_subintervals(s, e).is_empty());
            assert_eq!(a.available_between(s, e), 0.0);
            assert_eq!(a.blocked_between(s, e), 0.0);
        }
        // Reversed windows stay empty even when blocked intervals straddle
        // or precede the (reversed) bounds.
        a.block(6.0, 7.0);
        assert!(a.available_subintervals(6.5, 3.0).is_empty());
    }

    #[test]
    fn fully_blocked_window_yields_empty_mask() {
        let mut a = TimeAvailability::new();
        a.block(0.0, 10.0);
        assert!(a.available_subintervals(2.0, 8.0).is_empty());
        assert_eq!(a.available_between(2.0, 8.0), 0.0);
        // Sliver gaps below the merge tolerance are dropped, not returned
        // as zero-width intervals.
        let mut b = TimeAvailability::new();
        b.block(0.0, 5.0);
        b.block(5.0 + 1e-13, 10.0);
        assert!(b.available_subintervals(0.0, 10.0).is_empty());
    }
}
