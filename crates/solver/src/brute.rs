//! Small exact / exhaustive solvers used by the test suites to certify
//! optimality of the combinatorial algorithms on micro instances.
//!
//! The paper's program (P1) says that on a single link, per-flow constant
//! rates `s_i` are feasible if and only if for every interval `[a, b]`
//! spanned by a release and a deadline, the flows entirely contained in it
//! fit: `sum_{[r_i,d_i] ⊆ [a,b]} w_i / s_i <= b - a`. This module evaluates
//! that feasibility test directly, and performs a grid search (plus local
//! refinement) over per-job rates for instances with at most a few jobs.
//! The result is an independent, if slow, estimate of the optimal energy
//! that the YDS-based algorithms are tested against.

use crate::yds::Job;
use dcn_power::PowerFunction;

/// The energy of running each job at its assigned constant speed:
/// `sum_i mu * w_i * s_i^(alpha - 1)` (plus nothing for the idle term, which
/// plays no role on a single always-active link).
pub fn energy_of_speeds(jobs: &[Job], speeds: &[f64], power: &PowerFunction) -> f64 {
    assert_eq!(jobs.len(), speeds.len(), "one speed per job");
    jobs.iter()
        .zip(speeds)
        .map(|(j, &s)| power.dynamic_power(s) * (j.work / s))
        .sum()
}

/// The feasibility test of program (P1): for every interval `[a, b]` between
/// a release time and a deadline, the jobs contained in it must fit at their
/// assigned speeds.
pub fn speeds_feasible(jobs: &[Job], speeds: &[f64]) -> bool {
    assert_eq!(jobs.len(), speeds.len(), "one speed per job");
    if speeds.iter().any(|&s| s <= 0.0 || s.is_nan()) {
        return false;
    }
    let mut points: Vec<f64> = jobs.iter().flat_map(|j| [j.release, j.deadline]).collect();
    points.sort_by(|a, b| a.partial_cmp(b).expect("finite job times"));
    points.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    for (ia, &a) in points.iter().enumerate() {
        for &b in &points[ia + 1..] {
            let needed: f64 = jobs
                .iter()
                .zip(speeds)
                .filter(|(j, _)| j.release >= a - 1e-12 && j.deadline <= b + 1e-12)
                .map(|(j, &s)| j.work / s)
                .sum();
            if needed > (b - a) + 1e-9 {
                return false;
            }
        }
    }
    true
}

/// Brute-force estimate of the optimal single-link (single-processor)
/// speed-scaling energy, by grid search over per-job constant speeds
/// followed by a few rounds of local refinement.
///
/// Intended for test instances with at most three or four jobs; the running
/// time is `resolution^n` per refinement round.
///
/// # Panics
///
/// Panics if there are no jobs or more than four of them.
pub fn brute_force_optimal_energy(jobs: &[Job], power: &PowerFunction, resolution: usize) -> f64 {
    assert!(
        (1..=4).contains(&jobs.len()),
        "brute force supports 1..=4 jobs, got {}",
        jobs.len()
    );
    assert!(resolution >= 3, "resolution must be at least 3");

    // Initial speed ranges: a job never needs to run slower than its density
    // and never faster than (total work) / (shortest gap between any two
    // distinct breakpoints).
    let total_work: f64 = jobs.iter().map(|j| j.work).sum();
    let mut points: Vec<f64> = jobs.iter().flat_map(|j| [j.release, j.deadline]).collect();
    points.sort_by(|a, b| a.partial_cmp(b).expect("finite job times"));
    points.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let min_gap = points
        .windows(2)
        .map(|w| w[1] - w[0])
        .fold(f64::INFINITY, f64::min)
        .max(1e-9);
    let mut ranges: Vec<(f64, f64)> = jobs
        .iter()
        .map(|j| (j.density(), (total_work / min_gap).max(j.density() * 2.0)))
        .collect();

    let mut best_energy = f64::INFINITY;
    let mut best_speeds: Vec<f64> = jobs.iter().map(|j| j.density()).collect();

    for _round in 0..6 {
        let mut speeds = Vec::with_capacity(jobs.len());
        search_dimension(
            jobs,
            power,
            resolution,
            &ranges,
            0,
            &mut speeds,
            &mut best_energy,
            &mut best_speeds,
        );
        // Shrink every range around the incumbent for the next round.
        for (r, &s) in ranges.iter_mut().zip(&best_speeds) {
            let width = (r.1 - r.0) / resolution as f64 * 2.0;
            r.0 = (s - width).max(jobs[0].density().min(1e-9)).max(1e-9);
            r.1 = s + width;
        }
        for (r, j) in ranges.iter_mut().zip(jobs) {
            r.0 = r.0.max(j.density() * 0.999);
        }
    }
    best_energy
}

#[allow(clippy::too_many_arguments)]
fn search_dimension(
    jobs: &[Job],
    power: &PowerFunction,
    resolution: usize,
    ranges: &[(f64, f64)],
    dim: usize,
    speeds: &mut Vec<f64>,
    best_energy: &mut f64,
    best_speeds: &mut Vec<f64>,
) {
    if dim == jobs.len() {
        if speeds_feasible(jobs, speeds) {
            let e = energy_of_speeds(jobs, speeds, power);
            if e < *best_energy {
                *best_energy = e;
                best_speeds.clone_from(speeds);
            }
        }
        return;
    }
    let (lo, hi) = ranges[dim];
    for step in 0..resolution {
        let s = lo + (hi - lo) * step as f64 / (resolution - 1) as f64;
        if s <= 0.0 || s.is_nan() {
            continue;
        }
        speeds.push(s);
        search_dimension(
            jobs,
            power,
            resolution,
            ranges,
            dim + 1,
            speeds,
            best_energy,
            best_speeds,
        );
        speeds.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yds::yds_schedule;

    fn alpha2() -> PowerFunction {
        PowerFunction::speed_scaling_only(1.0, 2.0, 1e9)
    }

    #[test]
    fn energy_of_speeds_closed_form() {
        let jobs = [Job::new(0, 0.0, 2.0, 4.0)];
        // alpha=2: energy = w * s = 4 * 3.
        assert!((energy_of_speeds(&jobs, &[3.0], &alpha2()) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn feasibility_detects_overload() {
        let jobs = [Job::new(0, 0.0, 2.0, 4.0), Job::new(1, 0.0, 2.0, 4.0)];
        // Each at speed 4 needs 1 time unit each: total 2 <= 2, feasible.
        assert!(speeds_feasible(&jobs, &[4.0, 4.0]));
        // At speed 2 each needs 2 units: total 4 > 2, infeasible.
        assert!(!speeds_feasible(&jobs, &[2.0, 2.0]));
        // Non-positive speeds are never feasible.
        assert!(!speeds_feasible(&jobs, &[0.0, 4.0]));
    }

    #[test]
    fn single_job_brute_force_matches_density() {
        let jobs = [Job::new(0, 1.0, 5.0, 8.0)];
        let brute = brute_force_optimal_energy(&jobs, &alpha2(), 15);
        // Optimal: run at density 2, energy = 8 * 2 = 16.
        assert!((brute - 16.0).abs() < 0.2, "brute = {brute}");
    }

    #[test]
    fn brute_force_agrees_with_yds_on_two_jobs() {
        let jobs = [Job::new(0, 0.0, 4.0, 6.0), Job::new(1, 1.0, 3.0, 4.0)];
        let p = alpha2();
        let yds = yds_schedule(&jobs).energy(&p);
        let brute = brute_force_optimal_energy(&jobs, &p, 21);
        assert!(
            (yds - brute).abs() < 0.05 * yds,
            "yds = {yds}, brute = {brute}"
        );
        // Brute force can never beat the optimal algorithm by more than the
        // grid slack.
        assert!(brute >= yds - 1e-6);
    }

    #[test]
    fn brute_force_agrees_with_yds_on_three_jobs() {
        let jobs = [
            Job::new(0, 0.0, 6.0, 5.0),
            Job::new(1, 2.0, 4.0, 3.0),
            Job::new(2, 3.0, 8.0, 4.0),
        ];
        let p = PowerFunction::speed_scaling_only(1.0, 3.0, 1e9);
        let yds = yds_schedule(&jobs).energy(&p);
        let brute = brute_force_optimal_energy(&jobs, &p, 13);
        assert!(
            brute >= yds - 1e-6,
            "brute force found something cheaper than the optimum: {brute} < {yds}"
        );
        assert!(
            (yds - brute).abs() < 0.08 * yds,
            "yds = {yds}, brute = {brute}"
        );
    }

    #[test]
    #[should_panic(expected = "1..=4 jobs")]
    fn too_many_jobs_rejected() {
        let jobs: Vec<Job> = (0..5).map(|i| Job::new(i, 0.0, 1.0, 1.0)).collect();
        brute_force_optimal_energy(&jobs, &alpha2(), 5);
    }
}
