//! Fluid, event-driven network simulator for deadline-constrained flow
//! schedules.
//!
//! The paper's evaluation is simulation-only (the authors used an
//! unreleased Python simulator). This crate is the Rust substitute: it
//! *executes* a [`dcn_core::Schedule`] on a topology at flow-level (fluid)
//! granularity and measures, independently of the analytic formulas in
//! `dcn-core`/`dcn-power`:
//!
//! * per-flow delivery: how much data arrived at the destination, when the
//!   flow completed, and whether its hard deadline was met;
//! * per-link load: instantaneous aggregate rate, peak rate and utilisation,
//!   busy time, and capacity violations;
//! * energy: the paper's objective (idle energy for every active link over
//!   the whole horizon, plus the speed-scaling energy integrated over time).
//!
//! Because the simulator only looks at the schedule's piecewise-constant
//! rate profiles and sweeps the global breakpoint list, its energy figure
//! must agree with [`dcn_core::Schedule::energy`] to floating-point
//! accuracy; the test suites use that agreement as a cross-check of both
//! implementations.
//!
//! Schedules produced by the event-driven online engine
//! ([`dcn_core::online`]) are executed the same way — the slices a policy
//! commits between events, whether solver re-solves or direct rate
//! assignments, stitch into ordinary rate profiles — with one
//! admission-aware entry point: [`Simulator::run_admitted`] excludes
//! flows the admission rule rejected from the deadline-miss count, so
//! online reports measure scheduling quality rather than admission
//! strictness.
//!
//! # Example
//!
//! ```
//! use dcn_core::{Algorithm, RoutedMcf, SolverContext};
//! use dcn_flow::workload::UniformWorkload;
//! use dcn_power::PowerFunction;
//! use dcn_sim::Simulator;
//! use dcn_topology::builders;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = builders::fat_tree(4);
//! let power = PowerFunction::speed_scaling_only(1.0, 2.0, 1e9);
//! let flows = UniformWorkload::paper_defaults(20, 1).generate(topo.hosts())?;
//! let mut ctx = SolverContext::from_network(&topo.network)?;
//! let solution = RoutedMcf::shortest_path().solve(&mut ctx, &flows, &power)?;
//! let schedule = solution.schedule.as_ref().unwrap();
//!
//! let report = Simulator::new(power).run_ctx(&ctx, &flows, schedule);
//! assert_eq!(report.deadline_misses, 0);
//! assert!((report.energy.total() - schedule.energy(&power).total()).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

mod report;
mod simulator;

pub use report::{FlowOutcome, LinkLoad, SimReport, SimSummary};
pub use simulator::Simulator;
