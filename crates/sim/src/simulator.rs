//! The fluid event-driven simulation loop.

use crate::report::{FlowOutcome, LinkLoad, SimReport};
use dcn_core::Schedule;
use dcn_flow::FlowSet;
use dcn_power::{EnergyBreakdown, PowerFunction, RateProfile};
use dcn_topology::{GraphCsr, LinkId, Network};
use std::collections::BTreeMap;

/// Executes schedules on a topology at fluid (flow-level) granularity.
///
/// The simulator sweeps the global list of rate breakpoints; between two
/// consecutive breakpoints every rate in the system is constant, so all
/// quantities of interest (delivered volume, link loads, energy) have exact
/// closed forms per segment. This is the same granularity the paper's
/// evaluation works at.
#[derive(Debug, Clone)]
pub struct Simulator {
    power: PowerFunction,
}

impl Simulator {
    /// Creates a simulator for networks whose links follow `power`.
    pub fn new(power: PowerFunction) -> Self {
        Self { power }
    }

    /// The power function in effect.
    pub fn power(&self) -> &PowerFunction {
        &self.power
    }

    /// Runs `schedule` for the given instance and reports what actually
    /// happened.
    ///
    /// Deprecated because it rebuilds a one-shot [`GraphCsr`] read view of
    /// the network on **every** call, defeating the warm-state reuse the
    /// [`SolverContext`](dcn_core::SolverContext) session API provides —
    /// in a loop (experiment sweeps, the online rolling-horizon
    /// re-solves) that rebuild dominates the simulation itself. Use
    /// [`Simulator::run_ctx`] with the context the schedule was solved on;
    /// [`Simulator::run_on`] accepts a prebuilt CSR view directly, and
    /// [`Simulator::run_admitted`] is the admission-aware variant for
    /// online schedules.
    #[deprecated(
        since = "0.2.0",
        note = "use `Simulator::run_ctx` with a SolverContext (or `Simulator::run_on` \
                with a prebuilt CSR view); both avoid the per-call CSR rebuild"
    )]
    pub fn run(&self, network: &Network, flows: &FlowSet, schedule: &Schedule) -> SimReport {
        self.run_on(&GraphCsr::from_network(network), flows, schedule)
    }

    /// Runs `schedule` on the CSR view owned by a
    /// [`SolverContext`](dcn_core::SolverContext) — the natural follow-up
    /// to [`dcn_core::Algorithm::solve`] on the same context.
    pub fn run_ctx(
        &self,
        ctx: &dcn_core::SolverContext<'_>,
        flows: &FlowSet,
        schedule: &Schedule,
    ) -> SimReport {
        self.run_on(ctx.graph(), flows, schedule)
    }

    /// Runs an *online* schedule: like [`Simulator::run_on`], but flows the
    /// admission rule rejected (`admitted[flow] == false`) are excluded
    /// from the deadline-miss count — a rejected flow never transmits, so
    /// counting it as a miss would conflate admission control with
    /// scheduling failures. Rejected flows still appear in
    /// [`SimReport::flows`] (with zero delivery) for inspection.
    ///
    /// This is the measurement half of the event-driven online engine:
    /// pass the stitched policy-committed schedule of an `OnlineOutcome`
    /// together with its report's admission mask. It applies to every
    /// registered `OnlinePolicy` alike — solver re-solves (`resolve`,
    /// `hybrid`) and direct rate assignments (`edf`, `srpt`, `rcd`)
    /// commit the same piecewise-constant profiles.
    ///
    /// # Panics
    ///
    /// Panics when `admitted` does not have one entry per flow.
    pub fn run_admitted(
        &self,
        graph: &GraphCsr,
        flows: &FlowSet,
        schedule: &Schedule,
        admitted: &[bool],
    ) -> SimReport {
        assert_eq!(
            admitted.len(),
            flows.len(),
            "one admission decision per flow"
        );
        let mut report = self.run_on(graph, flows, schedule);
        report.deadline_misses = report
            .flows
            .iter()
            .filter(|f| admitted[f.flow] && !f.deadline_met())
            .count();
        report
    }

    /// Runs `schedule` against a prebuilt CSR view of the network; link
    /// capacities are served from the flat per-link array instead of
    /// re-deriving anything from the mutable builder.
    pub fn run_on(&self, graph: &GraphCsr, flows: &FlowSet, schedule: &Schedule) -> SimReport {
        let horizon = if flows.is_empty() {
            schedule.horizon()
        } else {
            flows.horizon()
        };

        // Aggregate link profiles and per-flow arrival (last link) profiles.
        let link_profiles: BTreeMap<LinkId, RateProfile> = schedule.link_profiles();
        let arrival_profiles: BTreeMap<usize, RateProfile> = schedule
            .flow_schedules()
            .iter()
            .map(|fs| (fs.flow, fs.profile.clone()))
            .collect();

        // Global breakpoint sweep.
        let mut times: Vec<f64> = vec![horizon.0, horizon.1];
        for p in link_profiles.values() {
            for (s, e, _) in p.segments() {
                times.push(s);
                times.push(e);
            }
        }
        for p in arrival_profiles.values() {
            for (s, e, _) in p.segments() {
                times.push(s);
                times.push(e);
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        // Per-flow delivery tracking.
        let mut delivered: BTreeMap<usize, f64> = BTreeMap::new();
        let mut completion: BTreeMap<usize, Option<f64>> = BTreeMap::new();
        for flow in flows.iter() {
            delivered.insert(flow.id, 0.0);
            completion.insert(flow.id, None);
        }

        // Per-link accumulators.
        #[derive(Default, Clone)]
        struct LinkAcc {
            peak: f64,
            busy: f64,
            volume: f64,
            dynamic_energy: f64,
        }
        let mut link_acc: BTreeMap<LinkId, LinkAcc> = BTreeMap::new();

        for w in times.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            let dt = t1 - t0;
            if dt <= 0.0 {
                continue;
            }
            let mid = 0.5 * (t0 + t1);

            for (&link, profile) in &link_profiles {
                let rate = profile.rate_at(mid);
                if rate <= 0.0 {
                    continue;
                }
                let acc = link_acc.entry(link).or_default();
                acc.peak = acc.peak.max(rate);
                acc.busy += dt;
                acc.volume += rate * dt;
                acc.dynamic_energy += self.power.dynamic_power(rate) * dt;
            }

            for flow in flows.iter() {
                if completion[&flow.id].is_some() {
                    continue;
                }
                let Some(profile) = arrival_profiles.get(&flow.id) else {
                    continue;
                };
                let rate = profile.rate_at(mid);
                if rate <= 0.0 {
                    continue;
                }
                let before = delivered[&flow.id];
                let after = before + rate * dt;
                if after >= flow.volume - 1e-9 {
                    // Completion happens inside this segment.
                    let needed = flow.volume - before;
                    let finish = t0 + needed / rate;
                    completion.insert(flow.id, Some(finish));
                    delivered.insert(flow.id, flow.volume.max(after.min(flow.volume)));
                } else {
                    delivered.insert(flow.id, after);
                }
            }
        }

        // Assemble the report.
        let horizon_length = horizon.1 - horizon.0;
        let mut links = Vec::new();
        let mut idle_energy = 0.0;
        let mut dynamic_energy = 0.0;
        let mut capacity_violations = 0;
        let mut max_utilization: f64 = 0.0;
        for (link, acc) in &link_acc {
            let capacity = graph.capacity(*link).min(self.power.capacity());
            let idle = self.power.sigma() * horizon_length;
            idle_energy += idle;
            dynamic_energy += acc.dynamic_energy;
            if acc.peak > capacity * (1.0 + 1e-9) {
                capacity_violations += 1;
            }
            max_utilization = max_utilization.max(acc.peak / capacity);
            links.push(LinkLoad {
                link: *link,
                peak_rate: acc.peak,
                busy_time: acc.busy,
                volume: acc.volume,
                energy: idle + acc.dynamic_energy,
            });
        }

        let mut flow_outcomes = Vec::new();
        let mut deadline_misses = 0;
        for flow in flows.iter() {
            let outcome = FlowOutcome {
                flow: flow.id,
                delivered: delivered[&flow.id],
                required: flow.volume,
                completion_time: completion[&flow.id],
                deadline: flow.deadline,
            };
            if !outcome.deadline_met() {
                deadline_misses += 1;
            }
            flow_outcomes.push(outcome);
        }

        SimReport {
            flows: flow_outcomes,
            links,
            energy: EnergyBreakdown {
                idle: idle_energy,
                dynamic: dynamic_energy,
                active_links: link_acc.len(),
            },
            deadline_misses,
            capacity_violations,
            max_utilization,
            horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_core::prelude::*;
    use dcn_core::schedule::FlowSchedule;
    use dcn_flow::workload::UniformWorkload;
    use dcn_topology::builders;

    fn x2(capacity: f64) -> PowerFunction {
        PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
    }

    #[test]
    fn simple_constant_rate_flow_is_measured_exactly() {
        let topo = builders::line(3);
        let power = PowerFunction::new(1.0, 1.0, 2.0, 10.0).unwrap();
        let flows =
            dcn_flow::FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[2], 0.0, 4.0, 8.0)])
                .unwrap();
        let path = topo
            .network
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        let schedule = Schedule::new(
            vec![FlowSchedule::uniform(
                0,
                path,
                dcn_power::RateProfile::constant(0.0, 4.0, 2.0),
            )],
            (0.0, 4.0),
        );

        let report = Simulator::new(power).run_on(&topo.csr(), &flows, &schedule);
        assert!(report.all_good());
        let f = report.flow(0).unwrap();
        assert!((f.delivered - 8.0).abs() < 1e-9);
        assert!((f.completion_time.unwrap() - 4.0).abs() < 1e-9);
        assert_eq!(report.active_link_count(), 2);
        // Analytic cross-check.
        assert!((report.energy.total() - schedule.energy(&power).total()).abs() < 1e-9);
        assert!((report.max_utilization - 0.2).abs() < 1e-9);
    }

    #[test]
    fn simulator_agrees_with_analytic_energy_for_sp_mcf() {
        let topo = builders::fat_tree(4);
        let power = x2(1e9);
        let flows = UniformWorkload::paper_defaults(30, 4)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let solution = RoutedMcf::shortest_path()
            .solve(&mut ctx, &flows, &power)
            .unwrap();
        let schedule = solution.schedule.as_ref().unwrap();
        let report = Simulator::new(power).run_ctx(&ctx, &flows, schedule);
        assert_eq!(report.deadline_misses, 0);
        let analytic = schedule.energy(&power).total();
        assert!(
            (report.energy.total() - analytic).abs() < 1e-6 * analytic,
            "simulated {} vs analytic {analytic}",
            report.energy.total()
        );
    }

    #[test]
    fn simulator_agrees_with_analytic_energy_for_random_schedule() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = UniformWorkload::paper_defaults(25, 9)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let solution = Dcfsr::default().solve(&mut ctx, &flows, &power).unwrap();
        let schedule = solution.schedule.as_ref().unwrap();
        let report = Simulator::new(power).run_ctx(&ctx, &flows, schedule);
        assert_eq!(report.deadline_misses, 0);
        let analytic = schedule.energy(&power).total();
        assert!((report.energy.total() - analytic).abs() < 1e-6 * analytic);
        assert!(report.energy.total() >= solution.lower_bound.unwrap() - 1e-6);
    }

    #[test]
    fn deprecated_run_matches_run_on_and_run_ctx() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = UniformWorkload::paper_defaults(20, 11)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let solution = RoutedMcf::shortest_path()
            .solve(&mut ctx, &flows, &power)
            .unwrap();
        let schedule = solution.schedule.as_ref().unwrap();
        let simulator = Simulator::new(power);
        #[allow(deprecated)] // pins the legacy delegate against the blessed paths
        let classic = simulator.run(&topo.network, &flows, schedule);
        let on_csr = simulator.run_on(&topo.csr(), &flows, schedule);
        let on_ctx = simulator.run_ctx(&ctx, &flows, schedule);
        assert_eq!(classic, on_csr);
        assert_eq!(classic, on_ctx);
    }

    #[test]
    fn run_admitted_excludes_rejected_flows_from_the_miss_count() {
        // Two flows, but only flow 0 is scheduled (flow 1 was "rejected").
        let topo = builders::line(3);
        let power = x2(10.0);
        let flows = dcn_flow::FlowSet::from_tuples([
            (topo.hosts()[0], topo.hosts()[2], 0.0, 4.0, 8.0),
            (topo.hosts()[0], topo.hosts()[2], 0.0, 4.0, 8.0),
        ])
        .unwrap();
        let path = topo
            .network
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        let schedule = Schedule::new(
            vec![FlowSchedule::uniform(
                0,
                path,
                dcn_power::RateProfile::constant(0.0, 4.0, 2.0),
            )],
            (0.0, 4.0),
        );
        let simulator = Simulator::new(power);
        let graph = topo.csr();
        // The plain run counts the unscheduled flow as a miss ...
        let plain = simulator.run_on(&graph, &flows, &schedule);
        assert_eq!(plain.deadline_misses, 1);
        // ... the admission-aware run does not, but still reports it.
        let online = simulator.run_admitted(&graph, &flows, &schedule, &[true, false]);
        assert_eq!(online.deadline_misses, 0);
        assert_eq!(online.flows.len(), 2);
        assert_eq!(online.flow(1).unwrap().delivered, 0.0);
        // An admitted flow that misses still counts.
        let both = simulator.run_admitted(&graph, &flows, &schedule, &[true, true]);
        assert_eq!(both.deadline_misses, 1);
    }

    #[test]
    #[should_panic(expected = "one admission decision per flow")]
    fn run_admitted_rejects_a_short_mask() {
        let topo = builders::line(3);
        let flows =
            dcn_flow::FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[2], 0.0, 4.0, 8.0)])
                .unwrap();
        let schedule = Schedule::new(vec![], (0.0, 4.0));
        Simulator::new(x2(10.0)).run_admitted(&topo.csr(), &flows, &schedule, &[]);
    }

    #[test]
    fn deadline_miss_is_detected() {
        // A schedule that only delivers half the data in time.
        let topo = builders::line(3);
        let power = x2(10.0);
        let flows =
            dcn_flow::FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[2], 0.0, 4.0, 8.0)])
                .unwrap();
        let path = topo
            .network
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        let schedule = Schedule::new(
            vec![FlowSchedule::uniform(
                0,
                path,
                dcn_power::RateProfile::constant(0.0, 2.0, 2.0),
            )],
            (0.0, 4.0),
        );
        let report = Simulator::new(power).run_on(&topo.csr(), &flows, &schedule);
        assert_eq!(report.deadline_misses, 1);
        assert!(!report.all_good());
        let f = report.flow(0).unwrap();
        assert!(f.completion_time.is_none());
        assert!((f.delivered - 4.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_violation_is_detected() {
        let topo = builders::line_with_capacity(3, 3.0);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 3.0);
        let flows =
            dcn_flow::FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[2], 0.0, 2.0, 8.0)])
                .unwrap();
        let path = topo
            .network
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        // Rate 4 exceeds capacity 3.
        let schedule = Schedule::new(
            vec![FlowSchedule::uniform(
                0,
                path,
                dcn_power::RateProfile::constant(0.0, 2.0, 4.0),
            )],
            (0.0, 2.0),
        );
        let report = Simulator::new(power).run_on(&topo.csr(), &flows, &schedule);
        assert_eq!(report.capacity_violations, 2);
        assert!(report.max_utilization > 1.0);
    }

    #[test]
    fn store_and_forward_windows_still_deliver_on_time() {
        // The per-link windows of Most-Critical-First may differ per link;
        // the nominal (arrival) profile is what the deadline check sees.
        let topo = builders::line_with_capacity(4, 1e9);
        let power = x2(1e9);
        let flows = dcn_flow::FlowSet::from_tuples([
            (topo.hosts()[0], topo.hosts()[3], 0.0, 6.0, 6.0),
            (topo.hosts()[1], topo.hosts()[2], 1.0, 3.0, 4.0),
        ])
        .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let solution = RoutedMcf::shortest_path()
            .solve(&mut ctx, &flows, &power)
            .unwrap();
        let report =
            Simulator::new(power).run_ctx(&ctx, &flows, solution.schedule.as_ref().unwrap());
        assert_eq!(report.deadline_misses, 0);
        for f in &report.flows {
            assert!(f.deadline_met());
        }
    }

    #[test]
    fn empty_schedule_produces_empty_report() {
        let topo = builders::line(2);
        let power = x2(10.0);
        let flows = dcn_flow::FlowSet::from_flows(vec![]).unwrap();
        let schedule = Schedule::new(vec![], (0.0, 1.0));
        let report = Simulator::new(power).run_on(&topo.csr(), &flows, &schedule);
        assert!(report.all_good());
        assert_eq!(report.active_link_count(), 0);
        assert_eq!(report.energy.total(), 0.0);
    }
}
