//! Simulation output: per-flow, per-link and aggregate measurements.

use dcn_flow::FlowId;
use dcn_power::EnergyBreakdown;
use dcn_topology::LinkId;
use serde::{Deserialize, Serialize};

/// What happened to one flow during the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// The flow.
    pub flow: FlowId,
    /// Data delivered to the destination by the end of the horizon.
    pub delivered: f64,
    /// Data the flow was required to deliver.
    pub required: f64,
    /// The instant at which the last byte arrived, if the flow completed.
    pub completion_time: Option<f64>,
    /// The flow's hard deadline.
    pub deadline: f64,
}

impl FlowOutcome {
    /// Returns `true` if the flow delivered all of its data no later than
    /// its deadline.
    pub fn deadline_met(&self) -> bool {
        match self.completion_time {
            Some(t) => t <= self.deadline + 1e-9 && self.delivered >= self.required - 1e-6,
            None => false,
        }
    }

    /// Slack between completion and deadline (negative when the deadline is
    /// missed or the flow never completed).
    pub fn slack(&self) -> f64 {
        match self.completion_time {
            Some(t) => self.deadline - t,
            None => f64::NEG_INFINITY,
        }
    }
}

/// Load measurements of one link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkLoad {
    /// The link.
    pub link: LinkId,
    /// Highest instantaneous aggregate rate observed.
    pub peak_rate: f64,
    /// Total time during which the link carried traffic.
    pub busy_time: f64,
    /// Total data carried.
    pub volume: f64,
    /// Energy consumed by the link (idle share + dynamic).
    pub energy: f64,
}

impl LinkLoad {
    /// Peak utilisation relative to a capacity.
    pub fn peak_utilization(&self, capacity: f64) -> f64 {
        self.peak_rate / capacity
    }
}

/// A compact, serializable digest of a [`SimReport`], sized for embedding
/// into experiment artifacts (one per scheduler per instance) where the
/// full per-flow / per-link breakdown would dominate the file.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimSummary {
    /// Number of flows that missed their deadline (or never completed).
    pub deadline_misses: usize,
    /// Number of links whose peak rate exceeded the capacity.
    pub capacity_violations: usize,
    /// The largest peak utilisation over all links (1.0 = at capacity).
    pub max_utilization: f64,
    /// Number of links that carried any traffic.
    pub active_links: usize,
    /// Total measured energy under the paper's objective.
    pub energy: f64,
}

impl SimSummary {
    /// Returns `true` when every flow met its deadline and no link exceeded
    /// its capacity.
    pub fn all_good(&self) -> bool {
        self.deadline_misses == 0 && self.capacity_violations == 0
    }
}

/// The complete result of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-flow outcomes, indexed by flow id.
    pub flows: Vec<FlowOutcome>,
    /// Per-link loads for every link that carried traffic.
    pub links: Vec<LinkLoad>,
    /// Measured energy under the paper's objective.
    pub energy: EnergyBreakdown,
    /// Number of flows that missed their deadline (or never completed).
    pub deadline_misses: usize,
    /// Number of links whose peak rate exceeded the capacity.
    pub capacity_violations: usize,
    /// The largest peak utilisation over all links (1.0 = at capacity).
    pub max_utilization: f64,
    /// The simulated horizon `[T0, T1]`.
    pub horizon: (f64, f64),
}

impl SimReport {
    /// Returns `true` when every flow met its deadline and no link exceeded
    /// its capacity.
    pub fn all_good(&self) -> bool {
        self.deadline_misses == 0 && self.capacity_violations == 0
    }

    /// The outcome of a specific flow, if it was simulated.
    pub fn flow(&self, flow: FlowId) -> Option<&FlowOutcome> {
        self.flows.iter().find(|f| f.flow == flow)
    }

    /// The load of a specific link, if it carried traffic.
    pub fn link(&self, link: LinkId) -> Option<&LinkLoad> {
        self.links.iter().find(|l| l.link == link)
    }

    /// Number of links that carried any traffic.
    pub fn active_link_count(&self) -> usize {
        self.links.len()
    }

    /// The compact digest of this report for experiment artifacts.
    pub fn summary(&self) -> SimSummary {
        SimSummary {
            deadline_misses: self.deadline_misses,
            capacity_violations: self.capacity_violations,
            max_utilization: self.max_utilization,
            active_links: self.links.len(),
            energy: self.energy.total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_met_logic() {
        let ok = FlowOutcome {
            flow: 0,
            delivered: 10.0,
            required: 10.0,
            completion_time: Some(5.0),
            deadline: 6.0,
        };
        assert!(ok.deadline_met());
        assert!((ok.slack() - 1.0).abs() < 1e-12);

        let late = FlowOutcome {
            completion_time: Some(7.0),
            ..ok
        };
        assert!(!late.deadline_met());

        let never = FlowOutcome {
            completion_time: None,
            delivered: 3.0,
            ..ok
        };
        assert!(!never.deadline_met());
        assert_eq!(never.slack(), f64::NEG_INFINITY);
    }

    #[test]
    fn summary_digests_the_report() {
        let report = SimReport {
            flows: vec![],
            links: vec![LinkLoad {
                link: LinkId(0),
                peak_rate: 4.0,
                busy_time: 1.0,
                volume: 4.0,
                energy: 16.0,
            }],
            energy: EnergyBreakdown {
                idle: 2.0,
                dynamic: 16.0,
                active_links: 1,
            },
            deadline_misses: 0,
            capacity_violations: 0,
            max_utilization: 0.4,
            horizon: (0.0, 10.0),
        };
        let s = report.summary();
        assert!(s.all_good());
        assert_eq!(s.active_links, 1);
        assert_eq!(s.energy, 18.0);
        assert_eq!(s.max_utilization, 0.4);
        let missed = SimSummary {
            deadline_misses: 1,
            ..s
        };
        assert!(!missed.all_good());
    }

    #[test]
    fn link_load_utilization() {
        let l = LinkLoad {
            link: LinkId(3),
            peak_rate: 5.0,
            busy_time: 2.0,
            volume: 10.0,
            energy: 50.0,
        };
        assert!((l.peak_utilization(10.0) - 0.5).abs() < 1e-12);
    }
}
