//! # deadline-dcn
//!
//! A from-scratch Rust reproduction of *"Energy-Efficient Flow Scheduling
//! and Routing with Hard Deadlines in Data Center Networks"* (Lin Wang,
//! Fa Zhang, Kai Zheng, Athanasios V. Vasilakos, Shaolei Ren, Zhiyong Liu —
//! ICDCS 2014, arXiv:1405.7484).
//!
//! This umbrella crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`topology`] — the data-center network substrate (fat-tree, BCube,
//!   leaf–spine, line and parallel-link builders, path algorithms).
//! * [`power`] — the power-down + speed-scaling link power model (Eq. 1 of
//!   the paper) and energy accounting.
//! * [`flow`] — deadline-constrained flows and workload generators,
//!   including the paper's Fig. 2 workload.
//! * [`solver`] — YDS speed scaling, convex-cost fractional multi-commodity
//!   flow (Frank–Wolfe) and Raghavan–Tompson path decomposition.
//! * [`core`] — the paper's algorithms: **Most-Critical-First** (optimal
//!   DCFS) and **Random-Schedule** (approximate DCFSR), baselines and the
//!   fractional lower bound, all behind the `SolverContext` + `Algorithm`
//!   session API with a string-keyed registry.
//! * [`sim`] — a fluid event-driven simulator that executes schedules and
//!   measures deadlines, loads and energy.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `dcn-bench` crate for the harness regenerating the paper's evaluation.
//!
//! ```
//! use deadline_dcn::core::prelude::*;
//! use deadline_dcn::flow::workload::UniformWorkload;
//! use deadline_dcn::power::PowerFunction;
//! use deadline_dcn::topology::builders;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = builders::fat_tree(4);
//! let flows = UniformWorkload::paper_defaults(10, 1).generate(topo.hosts())?;
//! let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
//!
//! // One solver session per network; every scheduler plugs in by name.
//! let mut ctx = SolverContext::from_network(&topo.network)?;
//! let registry = AlgorithmRegistry::with_defaults();
//! let outcome = registry.create("dcfsr")?.solve(&mut ctx, &flows, &power)?;
//! println!("energy = {}", outcome.total_energy().unwrap());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub use dcn_core as core;
pub use dcn_flow as flow;
pub use dcn_power as power;
pub use dcn_sim as sim;
pub use dcn_solver as solver;
pub use dcn_topology as topology;
